package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/servers"
)

func sampleDataset() *Dataset {
	t0 := time.Date(2022, 8, 8, 15, 0, 0, 0, time.UTC)
	return &Dataset{
		Seed: 23,
		Thr: []ThroughputSample{
			{TestID: 1, Op: radio.Verizon, Dir: radio.Downlink, TimeUTC: t0, Bps: 42.5e6,
				Tech: radio.NRMid, RSRPdBm: -97.25, SINRdB: 12.5, MCS: 19, BLER: 0.08, CC: 2,
				MPH: 64.2, Km: 1234.5, Zone: geo.Mountain, Road: geo.RoadHighway,
				Server: servers.Cloud, Static: false, HOs: 1},
			{TestID: 2, Op: radio.TMobile, Dir: radio.Uplink, TimeUTC: t0.Add(time.Minute),
				Bps: 1.2e6, Tech: radio.LTE, RSRPdBm: -113, SINRdB: 1, MCS: 4, BLER: 0.2, CC: 1,
				MPH: 12, Km: 10, Zone: geo.Pacific, Road: geo.RoadCity,
				Server: servers.Edge, Static: true, HOs: 0},
		},
		RTT: []RTTSample{
			{TestID: 3, Op: radio.ATT, TimeUTC: t0, Ms: 81.5, Tech: radio.LTEA, MPH: 70,
				Km: 2000, Zone: geo.Central, Server: servers.Cloud},
		},
		Handovers: []HandoverRecord{
			{TestID: 1, Op: radio.Verizon, TimeUTC: t0.Add(2 * time.Second), DurSec: 0.053,
				FromTech: radio.LTEA, ToTech: radio.NRMid, FromCell: "V-LTE-A-7", ToCell: "V-5G-mid-11",
				Dir: radio.Downlink},
		},
		Tests: []TestSummary{
			{ID: 1, Op: radio.Verizon, Kind: TestBulkDL, Dir: radio.Downlink, StartUTC: t0,
				DurSec: 30, Zone: geo.Mountain, Server: servers.Cloud, MeanBps: 30e6,
				StdFracBps: 0.7, HighSpeedFrac: 0.4, Miles: 0.5, HOCount: 2, RxBytes: 1e8},
		},
		Apps: []AppRun{
			{ID: 9, Op: radio.Verizon, App: TestAR, StartUTC: t0, DurSec: 20, Server: servers.Edge,
				Compressed: true, HighSpeedFrac: 1, HOCount: 3, MedianE2EMs: 214, OffloadFPS: 4.35,
				MAP: 30.1},
		},
		Passive: []PassiveSample{
			{Op: radio.ATT, TimeUTC: t0, Km: 55, Tech: radio.LTE, Cell: "A-LTE-10", Zone: geo.Pacific},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset()
	if err := d.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	got.Seed = d.Seed // seed is not serialized; compare the records
	if !reflect.DeepEqual(d.Thr, got.Thr) {
		t.Errorf("throughput samples round-trip mismatch:\n%+v\n%+v", d.Thr, got.Thr)
	}
	if !reflect.DeepEqual(d.RTT, got.RTT) {
		t.Error("RTT samples round-trip mismatch")
	}
	if !reflect.DeepEqual(d.Handovers, got.Handovers) {
		t.Error("handover records round-trip mismatch")
	}
	if !reflect.DeepEqual(d.Tests, got.Tests) {
		t.Error("test summaries round-trip mismatch")
	}
	if !reflect.DeepEqual(d.Apps, got.Apps) {
		t.Error("app runs round-trip mismatch")
	}
	if !reflect.DeepEqual(d.Passive, got.Passive) {
		t.Error("passive samples round-trip mismatch")
	}
}

func TestLoadRejectsCorruptRows(t *testing.T) {
	dir := t.TempDir()
	if err := sampleDataset().Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileThr)
	corrupt := []byte("test_id,op,dir,time_utc,bps,tech,rsrp_dbm,sinr_db,mcs,bler,cc,mph,km,zone,road,server,static,hos\n" +
		"x,Verizon,DL,2022-08-08T15:00:00Z,1,LTE,-90,5,3,0.1,1,10,1,Pacific,city,cloud,false,0\n")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load accepted a row with a non-numeric test_id")
	}
}

func TestLoadRejectsUnknownEnum(t *testing.T) {
	dir := t.TempDir()
	if err := sampleDataset().Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileRTT)
	corrupt := []byte("test_id,op,time_utc,ms,tech,mph,km,zone,server,static\n" +
		"1,Sprint,2022-08-08T15:00:00Z,50,LTE,10,1,Pacific,cloud,false\n")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load accepted an unknown operator")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("Load of a missing directory succeeded")
	}
}

func TestFilters(t *testing.T) {
	d := sampleDataset()
	got := d.FilterThr(func(s ThroughputSample) bool { return s.Op == radio.Verizon })
	if len(got) != 1 || got[0].TestID != 1 {
		t.Errorf("FilterThr(Verizon) = %+v", got)
	}
	rtt := d.FilterRTT(func(s RTTSample) bool { return s.Ms > 100 })
	if len(rtt) != 0 {
		t.Errorf("FilterRTT(>100ms) = %+v, want empty", rtt)
	}
	if _, ok := d.TestByID(1); !ok {
		t.Error("TestByID(1) not found")
	}
	if _, ok := d.TestByID(99); ok {
		t.Error("TestByID(99) found a ghost")
	}
}

func TestHandoverKindAndVertical(t *testing.T) {
	h := HandoverRecord{FromTech: radio.NRMid, ToTech: radio.LTE}
	if h.Kind() != "5G->4G" || !h.Vertical() {
		t.Errorf("Kind = %q Vertical = %v, want 5G->4G / true", h.Kind(), h.Vertical())
	}
	h2 := HandoverRecord{FromTech: radio.LTE, ToTech: radio.LTE}
	if h2.Kind() != "4G->4G" || h2.Vertical() {
		t.Errorf("Kind = %q Vertical = %v, want 4G->4G / false", h2.Kind(), h2.Vertical())
	}
}

func TestMbps(t *testing.T) {
	s := ThroughputSample{Bps: 5e6}
	if s.Mbps() != 5 {
		t.Errorf("Mbps = %v, want 5", s.Mbps())
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset()
	if err := d.SaveCompressed(dir); err != nil {
		t.Fatalf("SaveCompressed: %v", err)
	}
	// Only .gz files should be visible (staging cleaned up).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".gz" {
			t.Errorf("unexpected artifact %s", e.Name())
		}
	}
	got, err := LoadCompressed(dir)
	if err != nil {
		t.Fatalf("LoadCompressed: %v", err)
	}
	if !reflect.DeepEqual(d.Thr, got.Thr) || !reflect.DeepEqual(d.Apps, got.Apps) {
		t.Error("compressed round trip lost records")
	}
	if _, err := LoadCompressed(t.TempDir()); err == nil {
		t.Error("LoadCompressed of an empty dir succeeded")
	}
}
