package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/servers"
)

// csvFiles lists the six dataset tables in export order.
var csvFiles = []string{fileThr, fileRTT, fileHO, fileTests, fileApps, filePassive}

// fuzzSeedDataset is a small but fully-populated dataset whose export seeds
// the fuzz corpus — every table, both server kinds, negative floats, and
// cell ids with the characters the exporter actually emits.
func fuzzSeedDataset() *Dataset {
	at := time.Date(2022, 8, 8, 15, 0, 0, 500e6, time.UTC)
	d := &Dataset{Seed: 23}
	for id := 1; id <= 3; id++ {
		d.Thr = append(d.Thr, ThroughputSample{
			TestID: id, Op: radio.Verizon, Dir: radio.Downlink, TimeUTC: at,
			Bps: 42.5e6, Tech: radio.NRMid, RSRPdBm: -91.25, SINRdB: 7.5, MCS: 17,
			BLER: 0.05, CC: 2, MPH: 61.2, Km: float64(id) * 3.7, Zone: geo.Pacific,
			Road: geo.RoadHighway, Server: servers.Cloud, HOs: 1,
		})
		d.RTT = append(d.RTT, RTTSample{
			TestID: id, Op: radio.TMobile, TimeUTC: at, Ms: 63.2, Tech: radio.LTEA,
			MPH: 30, Km: 5, Zone: geo.Mountain, Server: servers.Edge,
		})
		d.Handovers = append(d.Handovers, HandoverRecord{
			TestID: id, Op: radio.ATT, TimeUTC: at, DurSec: 0.058,
			FromTech: radio.LTE, ToTech: radio.NRLow, FromCell: "A-LTE-17", ToCell: "A-5G-low-4",
			Dir: radio.Uplink,
		})
		d.Tests = append(d.Tests, TestSummary{
			ID: id, Op: radio.Verizon, Kind: TestBulkDL, StartUTC: at, DurSec: 30,
			Zone: geo.Central, Server: servers.Cloud, MeanBps: 31e6, StdFracBps: 0.4,
			HighSpeedFrac: 0.25, Miles: 0.51, HOCount: 2, RxBytes: 1.1e8,
		})
		d.Apps = append(d.Apps, AppRun{
			ID: id, Op: radio.TMobile, App: TestAR, StartUTC: at, DurSec: 45,
			Server: servers.Edge, Compressed: true, MedianE2EMs: 214, OffloadFPS: 4.35, MAP: 30.1,
		})
		d.Passive = append(d.Passive, PassiveSample{
			Op: radio.ATT, TimeUTC: at, Km: 12.5, Tech: radio.LTE, Cell: "A-LTE-3",
			Zone: geo.Eastern, NoSvc: id == 2,
		})
	}
	return d
}

// readAll returns the concatenated bytes of every dataset CSV under dir.
func readAll(t *testing.T, dir string) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, name := range csvFiles {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		buf.WriteString(name)
		buf.WriteByte(0)
		buf.Write(b)
	}
	return buf.Bytes()
}

// FuzzLoadCSV mutates one table of a valid exported dataset at a time and
// asserts two properties: Load never panics, and anything Load accepts
// round-trips export→import→export byte-identically (the canonical form is
// a fixed point of Save∘Load).
func FuzzLoadCSV(f *testing.F) {
	seedDir := f.TempDir()
	if err := fuzzSeedDataset().Save(seedDir); err != nil {
		f.Fatalf("exporting seed dataset: %v", err)
	}
	for which, name := range csvFiles {
		b, err := os.ReadFile(filepath.Join(seedDir, name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(which, b)
	}
	f.Add(0, []byte("test_id,op\n1,Verizon\n"))
	f.Add(2, []byte("garbage"))
	f.Add(5, []byte(""))

	f.Fuzz(func(t *testing.T, which int, content []byte) {
		if which < 0 {
			which = -which
		}
		dir := t.TempDir()
		if err := fuzzSeedDataset().Save(dir); err != nil {
			t.Fatal(err)
		}
		target := csvFiles[which%len(csvFiles)]
		if err := os.WriteFile(filepath.Join(dir, target), content, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := Load(dir)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out1, out2 := t.TempDir(), t.TempDir()
		if err := d.Save(out1); err != nil {
			t.Fatalf("accepted dataset failed to export: %v", err)
		}
		back, err := Load(out1)
		if err != nil {
			t.Fatalf("our own export failed to import: %v", err)
		}
		if err := back.Save(out2); err != nil {
			t.Fatalf("re-imported dataset failed to export: %v", err)
		}
		if !bytes.Equal(readAll(t, out1), readAll(t, out2)) {
			t.Fatal("export -> import -> export is not byte-identical")
		}
	})
}
