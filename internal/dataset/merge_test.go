package dataset

import (
	"testing"
	"time"

	"wheels/internal/radio"
)

// shardPart builds a tiny dataset with locally-numbered ids 1..n across the
// id-carrying tables, plus one passive sample.
func shardPart(seed int64, n int) *Dataset {
	d := &Dataset{Seed: seed}
	at := time.Date(2022, 8, 8, 15, 0, 0, 0, time.UTC)
	for id := 1; id <= n; id++ {
		d.Thr = append(d.Thr, ThroughputSample{TestID: id, Op: radio.Verizon, TimeUTC: at, Bps: 1e6})
		d.RTT = append(d.RTT, RTTSample{TestID: id, Op: radio.TMobile, TimeUTC: at, Ms: 50})
		d.Handovers = append(d.Handovers, HandoverRecord{TestID: id, Op: radio.ATT, TimeUTC: at})
		d.Tests = append(d.Tests, TestSummary{ID: id, Op: radio.Verizon, Kind: TestBulkDL, StartUTC: at})
		d.Apps = append(d.Apps, AppRun{ID: id, Op: radio.Verizon, App: TestAR, StartUTC: at})
	}
	d.Passive = append(d.Passive, PassiveSample{Op: radio.Verizon, TimeUTC: at, Tech: radio.LTE})
	return d
}

func TestMergeRenumbered(t *testing.T) {
	merged := MergeRenumbered(shardPart(23, 3), nil, shardPart(23, 2), shardPart(23, 1))
	if merged.Seed != 23 {
		t.Errorf("merged seed = %d, want 23", merged.Seed)
	}
	// Ids must be campaign-unique and increase in shard order: 1..3, 4..5, 6.
	var ids []int
	for _, ts := range merged.Tests {
		ids = append(ids, ts.ID)
	}
	want := []int{1, 2, 3, 4, 5, 6}
	if len(ids) != len(want) {
		t.Fatalf("merged %d test summaries, want %d", len(ids), len(want))
	}
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("test ids = %v, want %v", ids, want)
		}
	}
	// Every table shifts consistently: the second shard's first record is 4.
	if merged.Thr[3].TestID != 4 || merged.RTT[3].TestID != 4 ||
		merged.Handovers[3].TestID != 4 || merged.Apps[3].ID != 4 {
		t.Error("tables did not shift consistently across the merge")
	}
	if len(merged.Passive) != 3 {
		t.Errorf("merged %d passive samples, want 3", len(merged.Passive))
	}
	if got := merged.MaxTestID(); got != 6 {
		t.Errorf("MaxTestID = %d, want 6", got)
	}
}

// TestMergeRenumberedEmptyParts is the fleet-reducer regression: a seed
// (or shard) whose campaign yields zero tests of some kind produces an
// empty-but-non-nil dataset, and the merge must absorb it without
// panicking or breaking id contiguity — downstream percentile code then
// sees empty tables, not nils.
func TestMergeRenumberedEmptyParts(t *testing.T) {
	empty := &Dataset{Seed: 23}
	merged := MergeRenumbered(empty, shardPart(23, 2), &Dataset{Seed: 23}, shardPart(23, 1))
	if merged.Seed != 23 {
		t.Errorf("merged seed = %d, want 23 (an empty leading shard still carries the seed)", merged.Seed)
	}
	want := []int{1, 2, 3}
	if len(merged.Tests) != len(want) {
		t.Fatalf("merged %d test summaries, want %d", len(merged.Tests), len(want))
	}
	for i, ts := range merged.Tests {
		if ts.ID != want[i] {
			t.Fatalf("test id %d = %d, want %d", i, ts.ID, want[i])
		}
	}
	if got := MergeRenumbered(&Dataset{Seed: 7}, &Dataset{Seed: 7}); got.Seed != 7 || got.MaxTestID() != 0 {
		t.Errorf("all-empty merge = seed %d, max id %d; want 7 and 0", got.Seed, got.MaxTestID())
	}
}

func TestShiftTestIDsAndMaxOnEmpty(t *testing.T) {
	d := &Dataset{}
	d.ShiftTestIDs(10) // must not panic
	if got := d.MaxTestID(); got != 0 {
		t.Errorf("empty MaxTestID = %d, want 0", got)
	}
}
