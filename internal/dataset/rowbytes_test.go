package dataset

import (
	"bytes"
	"encoding/csv"
	"math"
	"testing"
	"time"

	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/servers"
	"wheels/internal/sim"
)

// csvLine encodes one []string record exactly the way Save does.
func csvLine(t *testing.T, rec []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(rec); err != nil {
		t.Fatalf("csv.Write: %v", err)
	}
	w.Flush()
	return buf.Bytes()
}

// trickyStrings exercises every quoting path of encoding/csv: plain,
// empty, embedded comma/quote/newline/CR, leading space, the Postgres
// terminator, and multi-byte runes.
var trickyStrings = []string{
	"", "plain", "V-mmW-12", `has"quote`, "has,comma", "has\nnewline",
	"has\rcr", " leading-space", "\ttab-lead", `\.`, "ünïcødé", "ends ",
	`""`, "a,b\"c\nd",
}

// trickyFloats exercises every FormatFloat shape 'g' can produce.
var trickyFloats = []float64{
	0, 1, -1, 0.5, -3.25e-9, 1e21, 123456.789, math.Inf(1), math.Inf(-1),
	math.NaN(), math.SmallestNonzeroFloat64, math.MaxFloat64, -0.0,
}

// TestRowBytesMatchCSV pins the byte codecs of rowbytes.go to the
// encoding/csv output of the append* codecs for every table, across
// adversarial strings, floats, and times. This is the invariant that lets
// HashSink/CSVWriter skip encoding/csv without changing a single output
// byte (golden hashes included).
func TestRowBytesMatchCSV(t *testing.T) {
	rng := sim.NewRNG(7)
	// One encoder across all rows, so the time cache and float memo carry
	// state between rows exactly as a long-lived sink's encoder does.
	var enc rowEnc
	times := []time.Time{
		sim.TripStart.UTC(),
		sim.TripStart.UTC().Add(1234567891 * time.Nanosecond),
		time.Date(2021, 5, 3, 13, 7, 9, 500, time.UTC),
		time.Date(1999, 12, 31, 23, 59, 59, 999999999, time.UTC),
	}
	pickS := func(i int) string { return trickyStrings[i%len(trickyStrings)] }
	pickF := func(i int) float64 { return trickyFloats[i%len(trickyFloats)] }
	pickT := func(i int) time.Time { return times[i%len(times)] }

	for i := 0; i < 256; i++ {
		thr := ThroughputSample{
			TestID: rng.Intn(1 << 20), Op: radio.Operator(i % 3), Dir: radio.Direction(i % 2),
			TimeUTC: pickT(i), Bps: pickF(i), Tech: radio.Tech(i % 5), RSRPdBm: pickF(i + 1),
			SINRdB: pickF(i + 2), MCS: i - 128, BLER: pickF(i + 3), CC: i % 9, MPH: pickF(i + 4),
			Km: pickF(i + 5), Zone: geo.Timezone(i % 4), Road: geo.RoadClass(i % 3),
			Server: servers.Kind(i % 2), Static: i%2 == 0, HOs: i,
		}
		if got, want := enc.csvAppendThr(nil, thr), csvLine(t, appendThr(nil, thr)); !bytes.Equal(got, want) {
			t.Fatalf("thr row %d:\n got %q\nwant %q", i, got, want)
		}
		rtt := RTTSample{
			TestID: i, Op: radio.Operator(i % 3), TimeUTC: pickT(i + 1), Ms: pickF(i),
			Tech: radio.Tech(i % 5), MPH: pickF(i + 6), Km: pickF(i + 7),
			Zone: geo.Timezone(i % 4), Server: servers.Kind(i % 2), Static: i%3 == 0,
		}
		if got, want := enc.csvAppendRTT(nil, rtt), csvLine(t, appendRTT(nil, rtt)); !bytes.Equal(got, want) {
			t.Fatalf("rtt row %d:\n got %q\nwant %q", i, got, want)
		}
		ho := HandoverRecord{
			TestID: i, Op: radio.Operator(i % 3), TimeUTC: pickT(i + 2), DurSec: pickF(i),
			FromTech: radio.Tech(i % 5), ToTech: radio.Tech((i + 1) % 5),
			FromCell: pickS(i), ToCell: pickS(i + 3), Dir: radio.Direction(i % 2),
		}
		if got, want := enc.csvAppendHO(nil, ho), csvLine(t, appendHO(nil, ho)); !bytes.Equal(got, want) {
			t.Fatalf("ho row %d:\n got %q\nwant %q", i, got, want)
		}
		sum := TestSummary{
			ID: i, Op: radio.Operator(i % 3), Kind: TestKind(pickS(i + 1)), Dir: radio.Direction(i % 2),
			StartUTC: pickT(i + 3), DurSec: pickF(i + 8), Zone: geo.Timezone(i % 4),
			Server: servers.Kind(i % 2), Static: i%2 == 1, MeanBps: pickF(i + 9),
			StdFracBps: pickF(i + 10), MeanRTTms: pickF(i + 11), StdFracRTT: pickF(i + 12),
			HighSpeedFrac: pickF(i + 13), Miles: pickF(i + 14), HOCount: -i,
			RxBytes: pickF(i + 15), TxBytes: pickF(i + 16),
		}
		if got, want := enc.csvAppendTest(nil, sum), csvLine(t, appendTest(nil, sum)); !bytes.Equal(got, want) {
			t.Fatalf("test row %d:\n got %q\nwant %q", i, got, want)
		}
		app := AppRun{
			ID: i, Op: radio.Operator(i % 3), App: TestKind(pickS(i + 2)), StartUTC: pickT(i),
			DurSec: pickF(i + 17), Server: servers.Kind(i % 2), Static: i%2 == 0,
			Compressed: i%3 == 1, HighSpeedFrac: pickF(i + 18), HOCount: i,
			MedianE2EMs: pickF(i + 19), OffloadFPS: pickF(i + 20), MAP: pickF(i + 21),
			QoE: pickF(i + 22), RebufFrac: pickF(i + 23), AvgBitrate: pickF(i + 24),
			SendBitrate: pickF(i + 25), NetLatencyMs: pickF(i + 26), FrameDrop: pickF(i + 27),
		}
		if got, want := enc.csvAppendApp(nil, app), csvLine(t, appendApp(nil, app)); !bytes.Equal(got, want) {
			t.Fatalf("app row %d:\n got %q\nwant %q", i, got, want)
		}
		pas := PassiveSample{
			Op: radio.Operator(i % 3), TimeUTC: pickT(i + 4), Km: pickF(i + 28),
			Tech: radio.Tech(i % 5), Cell: pickS(i + 5), Zone: geo.Timezone(i % 4), NoSvc: i%2 == 0,
		}
		if got, want := enc.csvAppendPassive(nil, pas), csvLine(t, appendPassive(nil, pas)); !bytes.Equal(got, want) {
			t.Fatalf("passive row %d:\n got %q\nwant %q", i, got, want)
		}
	}

	// Headers go through the generic []string path.
	for i, h := range tableHeaders {
		if got, want := csvAppendRow(nil, h), csvLine(t, h); !bytes.Equal(got, want) {
			t.Fatalf("header %d:\n got %q\nwant %q", i, got, want)
		}
	}
	// The generic path also handles adversarial fields.
	if got, want := csvAppendRow(nil, trickyStrings), csvLine(t, trickyStrings); !bytes.Equal(got, want) {
		t.Fatalf("tricky row:\n got %q\nwant %q", got, want)
	}
}

// FuzzQuoteS fuzzes the single-field quoting path against encoding/csv.
func FuzzQuoteS(f *testing.F) {
	for _, s := range trickyStrings {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, field string) {
		var buf bytes.Buffer
		w := csv.NewWriter(&buf)
		if err := w.Write([]string{field}); err != nil {
			t.Skip() // fields encoding/csv itself rejects are out of scope
		}
		w.Flush()
		got := append(quoteS(nil, field), '\n')
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatalf("field %q:\n got %q\nwant %q", field, got, buf.Bytes())
		}
	})
}
