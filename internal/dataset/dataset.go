// Package dataset defines the consolidated cross-layer dataset the campaign
// produces — the analogue of the paper's XCAP-M-merged database (§3, C2):
// 500 ms throughput samples joined with PHY KPIs, individual RTT samples,
// handover records, per-test summaries, application QoE runs, and the
// passive handover-logger trace. Package analysis consumes these records to
// regenerate every figure and table.
package dataset

import (
	"time"

	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/servers"
)

// TestKind is the type of measurement a record came from.
type TestKind string

const (
	TestBulkDL TestKind = "bulk-dl"
	TestBulkUL TestKind = "bulk-ul"
	TestRTT    TestKind = "rtt"
	TestAR     TestKind = "ar"
	TestCAV    TestKind = "cav"
	TestVideo  TestKind = "video"
	TestGaming TestKind = "gaming"
	// TestSpeed is the extension: a commercial-style multi-connection
	// speed test (Table 3's comparison methodology).
	TestSpeed TestKind = "speedtest"
)

// ThroughputSample is one 500 ms application-layer throughput sample with
// the synchronized lower-layer KPIs — the unit of analysis for Figs. 3–7
// and Table 2.
type ThroughputSample struct {
	TestID  int
	Op      radio.Operator
	Dir     radio.Direction
	TimeUTC time.Time
	Bps     float64

	Tech    radio.Tech
	RSRPdBm float64
	SINRdB  float64
	MCS     int
	BLER    float64
	CC      int // component carriers in the transfer direction

	MPH    float64
	Km     float64
	Zone   geo.Timezone
	Road   geo.RoadClass
	Server servers.Kind
	Static bool
	HOs    int // handovers completed within this 500 ms interval
}

// Mbps returns the sample in Mbps.
func (s ThroughputSample) Mbps() float64 { return s.Bps / 1e6 }

// RTTSample is one ICMP echo measurement.
type RTTSample struct {
	TestID  int
	Op      radio.Operator
	TimeUTC time.Time
	Ms      float64
	Tech    radio.Tech
	MPH     float64
	Km      float64
	Zone    geo.Timezone
	Server  servers.Kind
	Static  bool
}

// HandoverRecord is one handover with its control-plane interruption.
type HandoverRecord struct {
	TestID   int
	Op       radio.Operator
	TimeUTC  time.Time
	DurSec   float64
	FromTech radio.Tech
	ToTech   radio.Tech
	FromCell string
	ToCell   string
	Dir      radio.Direction
}

// Vertical reports whether the handover crossed technologies.
func (h HandoverRecord) Vertical() bool { return h.FromTech != h.ToTech }

// Kind returns the Fig. 12 classification (4G->4G, 4G->5G, 5G->4G, 5G->5G).
func (h HandoverRecord) Kind() string {
	g := func(t radio.Tech) string {
		if t.Is5G() {
			return "5G"
		}
		return "4G"
	}
	return g(h.FromTech) + "->" + g(h.ToTech)
}

// TestSummary is the per-test aggregate used by Figs. 9–10 and Table 3.
type TestSummary struct {
	ID       int
	Op       radio.Operator
	Kind     TestKind
	Dir      radio.Direction
	StartUTC time.Time
	DurSec   float64
	Zone     geo.Timezone
	Server   servers.Kind
	Static   bool

	MeanBps       float64
	StdFracBps    float64 // std of 500 ms samples / mean
	MeanRTTms     float64
	StdFracRTT    float64
	HighSpeedFrac float64 // fraction of test time on 5G mid/mmWave
	Miles         float64
	HOCount       int
	RxBytes       float64
	TxBytes       float64
}

// AppRun is the per-run QoE record for the four 5G "killer" apps (§7).
type AppRun struct {
	ID       int
	Op       radio.Operator
	App      TestKind // TestAR, TestCAV, TestVideo, TestGaming
	StartUTC time.Time
	DurSec   float64
	Server   servers.Kind
	Static   bool

	Compressed    bool // AR/CAV: frame compression enabled
	HighSpeedFrac float64
	HOCount       int

	// AR/CAV metrics (Figs. 13, 14).
	MedianE2EMs float64
	OffloadFPS  float64
	MAP         float64 // AR only: object detection accuracy

	// 360° video metrics (Fig. 15).
	QoE        float64
	RebufFrac  float64
	AvgBitrate float64 // Mbps

	// Cloud gaming metrics (Fig. 16).
	SendBitrate  float64 // Mbps
	NetLatencyMs float64
	FrameDrop    float64 // fraction
}

// PassiveSample is one handover-logger observation: the technology an idle
// (ping-only) UE reports, logged continuously along the whole trip (§3).
type PassiveSample struct {
	Op      radio.Operator
	TimeUTC time.Time
	Km      float64
	Tech    radio.Tech
	Cell    string
	Zone    geo.Timezone
	NoSvc   bool
}

// Dataset is the consolidated campaign database.
type Dataset struct {
	Seed      int64
	Thr       []ThroughputSample
	RTT       []RTTSample
	Handovers []HandoverRecord
	Tests     []TestSummary
	Apps      []AppRun
	Passive   []PassiveSample
}

// FilterThr returns the throughput samples matching the predicate.
func (d *Dataset) FilterThr(keep func(ThroughputSample) bool) []ThroughputSample {
	var out []ThroughputSample
	for _, s := range d.Thr {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// FilterRTT returns the RTT samples matching the predicate.
func (d *Dataset) FilterRTT(keep func(RTTSample) bool) []RTTSample {
	var out []RTTSample
	for _, s := range d.RTT {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// TestByID returns the test summary with the given id.
func (d *Dataset) TestByID(id int) (TestSummary, bool) {
	for _, t := range d.Tests {
		if t.ID == id {
			return t, true
		}
	}
	return TestSummary{}, false
}
