package dataset

import (
	"compress/gzip"
	"os"
	"path/filepath"
)

// CSVWriter is the disk-streaming Sink: it writes each record straight into
// the per-table gzip CSV files as it is emitted, so exporting a campaign
// needs no in-memory Dataset at all. The on-disk layout is the same as
// SaveCompressed's (one <table>.csv.gz per record type, same headers, same
// row encoding), and LoadCompressed reads it back. Rows are encoded through
// the byte codecs of rowbytes.go, which produce bit-identical CSV to the
// encoding/csv path Save uses.
//
// Emit methods latch the first write error; Flush finalizes all six files
// and returns it. A CSVWriter must be flushed exactly once — emits after
// Flush are dropped.
type CSVWriter struct {
	files [numTables]*os.File
	zw    [numTables]*gzip.Writer
	row   []byte // reusable row encoding buffer
	enc   rowEnc
	err   error
	done  bool
}

// NewCSVWriter creates dir if needed and opens the six table streams,
// writing each header immediately.
func NewCSVWriter(dir string) (*CSVWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &CSVWriter{}
	for i, name := range tableNames {
		f, err := os.Create(filepath.Join(dir, name+".gz"))
		if err != nil {
			w.closeAll()
			return nil, err
		}
		w.files[i] = f
		w.zw[i] = gzip.NewWriter(f)
		w.row = csvAppendRow(w.row[:0], tableHeaders[i])
		if _, err := w.zw[i].Write(w.row); err != nil {
			w.closeAll()
			return nil, err
		}
	}
	return w, nil
}

// closeAll releases every open stream, keeping the first error. Used for
// constructor failure and by Flush.
func (w *CSVWriter) closeAll() {
	latch := func(err error) {
		if err != nil && w.err == nil {
			w.err = err
		}
	}
	for i := range w.files {
		if w.zw[i] != nil {
			latch(w.zw[i].Close())
		}
		if w.files[i] != nil {
			latch(w.files[i].Close())
		}
	}
}

func (w *CSVWriter) write(tab int) {
	if w.err != nil || w.done {
		return
	}
	if _, err := w.zw[tab].Write(w.row); err != nil {
		w.err = err
	}
}

func (w *CSVWriter) EmitThr(s ThroughputSample) {
	w.row = w.enc.csvAppendThr(w.row[:0], s)
	w.write(tabThr)
}
func (w *CSVWriter) EmitRTT(s RTTSample) {
	w.row = w.enc.csvAppendRTT(w.row[:0], s)
	w.write(tabRTT)
}
func (w *CSVWriter) EmitHandover(h HandoverRecord) {
	w.row = w.enc.csvAppendHO(w.row[:0], h)
	w.write(tabHO)
}
func (w *CSVWriter) EmitTest(t TestSummary) {
	w.row = w.enc.csvAppendTest(w.row[:0], t)
	w.write(tabTests)
}
func (w *CSVWriter) EmitApp(a AppRun) {
	w.row = w.enc.csvAppendApp(w.row[:0], a)
	w.write(tabApps)
}
func (w *CSVWriter) EmitPassive(p PassiveSample) {
	w.row = w.enc.csvAppendPassive(w.row[:0], p)
	w.write(tabPassive)
}

// Batch emits encode the whole slice into the row buffer and hand it to the
// table's gzip stream as one Write. DEFLATE block decisions depend only on
// the accumulated byte stream, never on Write call boundaries, so the .gz
// bytes are identical to per-record emission — TestCSVWriterBatchIdentical
// pins it.
func (w *CSVWriter) EmitThrAll(recs []ThroughputSample) {
	if len(recs) == 0 {
		return
	}
	buf := w.row[:0]
	for i := range recs {
		buf = w.enc.csvAppendThr(buf, recs[i])
	}
	w.row = buf
	w.write(tabThr)
}
func (w *CSVWriter) EmitRTTAll(recs []RTTSample) {
	if len(recs) == 0 {
		return
	}
	buf := w.row[:0]
	for i := range recs {
		buf = w.enc.csvAppendRTT(buf, recs[i])
	}
	w.row = buf
	w.write(tabRTT)
}
func (w *CSVWriter) EmitHandoverAll(recs []HandoverRecord) {
	if len(recs) == 0 {
		return
	}
	buf := w.row[:0]
	for i := range recs {
		buf = w.enc.csvAppendHO(buf, recs[i])
	}
	w.row = buf
	w.write(tabHO)
}
func (w *CSVWriter) EmitTestAll(recs []TestSummary) {
	if len(recs) == 0 {
		return
	}
	buf := w.row[:0]
	for i := range recs {
		buf = w.enc.csvAppendTest(buf, recs[i])
	}
	w.row = buf
	w.write(tabTests)
}
func (w *CSVWriter) EmitAppAll(recs []AppRun) {
	if len(recs) == 0 {
		return
	}
	buf := w.row[:0]
	for i := range recs {
		buf = w.enc.csvAppendApp(buf, recs[i])
	}
	w.row = buf
	w.write(tabApps)
}
func (w *CSVWriter) EmitPassiveAll(recs []PassiveSample) {
	if len(recs) == 0 {
		return
	}
	buf := w.row[:0]
	for i := range recs {
		buf = w.enc.csvAppendPassive(buf, recs[i])
	}
	w.row = buf
	w.write(tabPassive)
}

// Flush closes the gzip streams and files, and returns the first error
// encountered anywhere in the writer's lifetime. Safe to call more than
// once; only the first call does work.
func (w *CSVWriter) Flush() error {
	if w.done {
		return w.err
	}
	w.done = true
	w.closeAll()
	return w.err
}
