package dataset

import (
	"bytes"
	"math"
	"strconv"
	"time"
)

// rowEnc is the per-sink encoder state behind the csvAppend* row codecs: an
// incremental RFC3339Nano timestamp cache and a bit-pattern-keyed memo for
// hot repeated floats. Both are bit-exact accelerations, not alternative
// encodings — every byte they emit was produced by time.AppendFormat or
// strconv.AppendFloat for the same value (the caches only replay verbatim
// copies), so the golden dataset hashes cannot move. The zero value is ready
// to use; like the sinks that own one, a rowEnc is single-goroutine.
type rowEnc struct {
	tc timeCache
	fm []floatMemoEntry // direct-mapped float memo, allocated on first miss
}

// floatMemoBits sizes the direct-mapped float memo: 1<<floatMemoBits slots
// (~20 KiB). The hot repeats — rail SINR/MCS/BLER values, per-phase constant
// durations — fit in far fewer; collisions just overwrite a slot.
const floatMemoBits = 9

// floatMemoEntry memoizes one float's AppendFloat('g', -1, 64) rendering.
// The longest shortest-round-trip float64 is 24 bytes
// ("-2.2250738585072014e-308"); n = 0 marks an empty slot (only +0.0 has
// bit pattern 0, and its first rendering fills the slot like any other).
type floatMemoEntry struct {
	bits uint64
	n    uint8
	s    [24]byte
}

// quoteF is quoteF with the memo behind the exact-half fast path: values
// that miss the half branch look up their bit pattern, and a hit replays
// the bytes strconv.AppendFloat previously produced for that exact pattern.
func (e *rowEnc) quoteF(dst []byte, v float64) []byte {
	if out, ok := quoteHalf(dst, v); ok {
		return out
	}
	if e.fm == nil {
		e.fm = make([]floatMemoEntry, 1<<floatMemoBits)
	}
	bits := math.Float64bits(v)
	slot := &e.fm[(bits*0x9E3779B97F4A7C15)>>(64-floatMemoBits)]
	if slot.bits == bits && slot.n > 0 {
		return append(dst, slot.s[:slot.n]...)
	}
	n := len(dst)
	dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	if out := dst[n:]; len(out) <= len(slot.s) {
		slot.bits, slot.n = bits, uint8(len(out))
		copy(slot.s[:], out)
	}
	return dst
}

// quoteT is quoteT through the incremental timestamp cache.
func (e *rowEnc) quoteT(dst []byte, t time.Time) []byte { return e.tc.append(dst, t) }

// timeCache accelerates RFC3339Nano formatting for the common case of the
// campaign clock: consecutive timestamps land in the same wall minute, so
// only the seconds and fraction change. The cache holds the minute prefix
// ("YYYY-MM-DDTHH:MM:") and zone suffix of one fully-formatted timestamp,
// validated structurally against time.AppendFormat's own output; while
// later timestamps stay in that minute (and zone offset), the formatted
// form is prefix + 2-digit seconds + fraction + suffix, each piece either a
// verbatim copy of AppendFormat output or trivially fixed-width. Any
// structural surprise (5-digit years, sub-minute zone offsets, …) fails
// validation and every call falls back to the full AppendFormat.
type timeCache struct {
	valid   bool
	minute  int64    // floor(unix/60) of the validated minute
	offset  int      // zone offset in seconds
	prefix  [17]byte // "YYYY-MM-DDTHH:MM:"
	suffix  []byte   // zone suffix after seconds+fraction ("Z", "-05:00", …)
	scratch []byte   // fraction scratch for validation
}

func (c *timeCache) append(dst []byte, t time.Time) []byte {
	unix := t.Unix()
	_, off := t.Zone()
	min := unix / 60
	if unix < 0 && unix%60 != 0 {
		min-- // floor toward -inf so sec stays in [0, 60)
	}
	if c.valid && min == c.minute && off == c.offset {
		sec := int(unix - min*60)
		dst = append(dst, c.prefix[:]...)
		dst = append(dst, '0'+byte(sec/10), '0'+byte(sec%10))
		dst = appendNanoFrac(dst, t.Nanosecond())
		return append(dst, c.suffix...)
	}
	n := len(dst)
	dst = t.AppendFormat(dst, timeLayout)
	c.prime(dst[n:], unix, off, t.Nanosecond(), min)
	return dst
}

// prime revalidates the cache from one full AppendFormat rendering. It only
// accepts output it can reconstruct exactly: the RFC3339 field separators in
// place (which pins a 4-digit year), the seconds digits matching the unix
// second, and the fraction matching appendNanoFrac — then the prefix and
// zone suffix are verbatim slices of real AppendFormat output, constant for
// any other instant in the same minute under the same offset.
func (c *timeCache) prime(buf []byte, unix int64, off int, nsec int, min int64) {
	c.valid = false
	if len(buf) < 20 || buf[4] != '-' || buf[7] != '-' || buf[10] != 'T' || buf[13] != ':' || buf[16] != ':' {
		return
	}
	sec := int(unix - min*60)
	if sec < 0 || sec > 59 || buf[17] != '0'+byte(sec/10) || buf[18] != '0'+byte(sec%10) {
		return
	}
	c.scratch = appendNanoFrac(c.scratch[:0], nsec)
	fracEnd := 19 + len(c.scratch)
	if fracEnd > len(buf) || !bytes.Equal(buf[19:fracEnd], c.scratch) {
		return
	}
	copy(c.prefix[:], buf[:17])
	c.suffix = append(c.suffix[:0], buf[fracEnd:]...)
	c.minute, c.offset, c.valid = min, off, true
}

// appendNanoFrac appends RFC3339Nano's fractional-second field: nothing for
// zero, otherwise '.' plus the 9-digit nanosecond count with trailing zeros
// removed — exactly the ".999999999" layout element.
func appendNanoFrac(dst []byte, nsec int) []byte {
	if nsec == 0 {
		return dst
	}
	var tmp [9]byte
	for i := 8; i >= 0; i-- {
		tmp[i] = '0' + byte(nsec%10)
		nsec /= 10
	}
	n := 9
	for tmp[n-1] == '0' {
		n--
	}
	dst = append(dst, '.')
	return append(dst, tmp[:n]...)
}
