package dataset

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/servers"
)

// synthThr returns a deterministic throughput sample varying with i, so
// chunk contents differ row to row and any reordering shows up.
func synthThr(i int) ThroughputSample {
	ops := radio.Operators()
	return ThroughputSample{
		TestID: i, Op: ops[i%len(ops)], Dir: radio.Direction(i % 2),
		TimeUTC: time.Date(2022, 8, 8, 15, 0, 0, 0, time.UTC).Add(time.Duration(i) * 500 * time.Millisecond),
		Bps:     float64(i) * 1.5e6, Tech: radio.LTE, RSRPdBm: -90 - float64(i%20),
		SINRdB: float64(i % 25), MCS: i % 28, BLER: 0.01 * float64(i%10), CC: 1 + i%4,
		MPH: float64(i % 80), Km: float64(i) * 0.01, Zone: geo.Pacific,
		Road: geo.RoadHighway, Server: servers.Cloud, Static: i%7 == 0, HOs: i % 3,
	}
}

// emitSynthetic streams n throughput rows plus one record into each other
// table (so all six files carry content) into sink.
func emitSynthetic(sink Sink, n int) {
	for i := 0; i < n; i++ {
		sink.EmitThr(synthThr(i))
	}
	if n == 0 {
		return
	}
	d := sampleDataset()
	for _, r := range d.RTT {
		sink.EmitRTT(r)
	}
	for _, r := range d.Handovers {
		sink.EmitHandover(r)
	}
	for _, r := range d.Tests {
		sink.EmitTest(r)
	}
	for _, r := range d.Apps {
		sink.EmitApp(r)
	}
	for _, r := range d.Passive {
		sink.EmitPassive(r)
	}
}

// gunzipFile decompresses one table file; gzip.Reader consumes all members
// of a multi-member stream, which is exactly what the parallel writer
// produces.
func gunzipFile(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	defer zr.Close()
	b, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return b
}

func writeSerial(t *testing.T, dir string, n int) {
	t.Helper()
	w, err := NewCSVWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	emitSynthetic(w, n)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func writeParallel(t *testing.T, dir string, n, workers, chunkRows int) {
	t.Helper()
	w, err := NewParallelCSVWriter(dir, workers, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	emitSynthetic(w, n)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelCSVWriterMatchesSerial: for row counts straddling every chunk
// boundary case — empty table, single row, one row short of a chunk, an
// exact chunk, one over, several chunks — the parallel writer's files
// decompress to exactly the serial writer's content, and LoadCompressed
// reads them back.
func TestParallelCSVWriterMatchesSerial(t *testing.T) {
	const chunk = 4
	for _, n := range []int{0, 1, chunk - 1, chunk, chunk + 1, 3 * chunk, 3*chunk + 2} {
		t.Run(fmt.Sprintf("rows=%d", n), func(t *testing.T) {
			serial, par := t.TempDir(), t.TempDir()
			writeSerial(t, serial, n)
			writeParallel(t, par, n, 3, chunk)
			for _, name := range tableNames {
				want := gunzipFile(t, filepath.Join(serial, name+".gz"))
				got := gunzipFile(t, filepath.Join(par, name+".gz"))
				if !bytes.Equal(got, want) {
					t.Errorf("%s: parallel content differs from serial", name)
				}
			}
			want, err := LoadCompressed(serial)
			if err != nil {
				t.Fatal(err)
			}
			got, err := LoadCompressed(par)
			if err != nil {
				t.Fatalf("LoadCompressed(parallel): %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Error("parallel dataset loads differently from serial")
			}
		})
	}
}

// TestParallelCSVWriterDeterministicAcrossWorkers: the compressed bytes
// depend only on the chunk size, never on the worker count.
func TestParallelCSVWriterDeterministicAcrossWorkers(t *testing.T) {
	const n, chunk = 50, 8
	var want map[string][]byte
	for _, workers := range []int{1, 2, 8} {
		dir := t.TempDir()
		writeParallel(t, dir, n, workers, chunk)
		got := map[string][]byte{}
		for _, name := range tableNames {
			b, err := os.ReadFile(filepath.Join(dir, name+".gz"))
			if err != nil {
				t.Fatal(err)
			}
			got[name] = b
		}
		if want == nil {
			want = got
			continue
		}
		for name := range want {
			if !bytes.Equal(want[name], got[name]) {
				t.Errorf("workers=%d: %s bytes differ from workers=1", workers, name)
			}
		}
	}
}

// FuzzParallelChunking drives random (row count, chunk size) pairs through
// the parallel writer and verifies the gzip.Reader round trip always
// reproduces the serial writer's content — the multi-member framing can
// never depend on where chunk boundaries land.
func FuzzParallelChunking(f *testing.F) {
	f.Add(uint8(0), uint8(1))
	f.Add(uint8(1), uint8(1))
	f.Add(uint8(7), uint8(8))
	f.Add(uint8(8), uint8(8))
	f.Add(uint8(9), uint8(8))
	f.Add(uint8(64), uint8(3))
	f.Fuzz(func(t *testing.T, nRows, chunkRows uint8) {
		n, chunk := int(nRows), int(chunkRows)
		if chunk == 0 {
			chunk = DefaultChunkRows // the <=0 default path
		}
		serial, par := t.TempDir(), t.TempDir()
		writeSerial(t, serial, n)
		writeParallel(t, par, n, 2, chunk)
		for _, name := range tableNames {
			want := gunzipFile(t, filepath.Join(serial, name+".gz"))
			got := gunzipFile(t, filepath.Join(par, name+".gz"))
			if !bytes.Equal(got, want) {
				t.Fatalf("rows=%d chunk=%d %s: content mismatch", n, chunk, name)
			}
		}
	})
}
