package dataset

// Merge and renumber helpers for the sharded campaign engine: each route
// shard produces an independent dataset with locally-numbered test ids
// (1..k), and the merge pass concatenates the shards in route order while
// shifting every shard's ids past the running maximum, so the merged
// dataset has campaign-unique ids that increase along the route exactly as
// a serial run's would.

// MaxTestID returns the largest test id present in any table of the
// dataset, or 0 if the dataset holds no id-carrying records.
func (d *Dataset) MaxTestID() int {
	max := 0
	up := func(id int) {
		if id > max {
			max = id
		}
	}
	for _, s := range d.Thr {
		up(s.TestID)
	}
	for _, s := range d.RTT {
		up(s.TestID)
	}
	for _, h := range d.Handovers {
		up(h.TestID)
	}
	for _, t := range d.Tests {
		up(t.ID)
	}
	for _, a := range d.Apps {
		up(a.ID)
	}
	return max
}

// ShiftTestIDs adds delta to every test id in every table. Passive samples
// carry no test id and are unaffected.
func (d *Dataset) ShiftTestIDs(delta int) {
	for i := range d.Thr {
		d.Thr[i].TestID += delta
	}
	for i := range d.RTT {
		d.RTT[i].TestID += delta
	}
	for i := range d.Handovers {
		d.Handovers[i].TestID += delta
	}
	for i := range d.Tests {
		d.Tests[i].ID += delta
	}
	for i := range d.Apps {
		d.Apps[i].ID += delta
	}
}

// Append appends every record of other to d, leaving ids untouched. The
// caller is responsible for id disjointness (see MergeRenumbered).
func (d *Dataset) Append(other *Dataset) {
	d.Thr = append(d.Thr, other.Thr...)
	d.RTT = append(d.RTT, other.RTT...)
	d.Handovers = append(d.Handovers, other.Handovers...)
	d.Tests = append(d.Tests, other.Tests...)
	d.Apps = append(d.Apps, other.Apps...)
	d.Passive = append(d.Passive, other.Passive...)
}

// MergeRenumbered concatenates the parts in order into one dataset,
// renumbering each part's locally-unique test ids by the running maximum.
// It is the materialized form of replaying each part through a Renumber
// sink; unlike the pre-streaming implementation the parts are no longer
// mutated. Nil parts are skipped (a shard whose route segment produced no
// work). The merged Seed is taken from the first non-nil part.
func MergeRenumbered(parts ...*Dataset) *Dataset {
	col := &Collector{}
	r := NewRenumber(col)
	seeded := false
	for _, p := range parts {
		if p == nil {
			continue
		}
		if !seeded {
			col.D.Seed = p.Seed
			seeded = true
		}
		p.EmitTo(r)
		r.Advance()
	}
	return &col.D
}
