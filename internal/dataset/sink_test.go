package dataset

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCollectorRoundTrip: replaying a dataset into a Collector reproduces
// it exactly — EmitTo order and Collector appends are the identity pair the
// streaming refactor rests on.
func TestCollectorRoundTrip(t *testing.T) {
	ds := fuzzSeedDataset()
	col := NewCollector(ds.Seed)
	ds.EmitTo(col)
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, col.Dataset()) {
		t.Fatal("EmitTo(Collector) did not reproduce the dataset")
	}
}

// TestCSVWriterMatchesSaveCompressed: the streaming exporter's .gz files
// are byte-identical to SaveCompressed's — same headers, same row encoding,
// same gzip framing.
func TestCSVWriterMatchesSaveCompressed(t *testing.T) {
	ds := fuzzSeedDataset()
	saveDir, streamDir := t.TempDir(), t.TempDir()
	if err := ds.SaveCompressed(saveDir); err != nil {
		t.Fatal(err)
	}
	w, err := NewCSVWriter(streamDir)
	if err != nil {
		t.Fatal(err)
	}
	ds.EmitTo(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, name := range csvFiles {
		saved, err := os.ReadFile(filepath.Join(saveDir, name+".gz"))
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := os.ReadFile(filepath.Join(streamDir, name+".gz"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(saved, streamed) {
			t.Errorf("%s.gz: streamed bytes differ from SaveCompressed", name)
		}
	}
}

// TestHashSinkFingerprint: the hash is deterministic for identical streams
// and moves when any record changes.
func TestHashSinkFingerprint(t *testing.T) {
	ds := fuzzSeedDataset()
	sum := func(d *Dataset) string {
		h := NewHashSink()
		d.EmitTo(h)
		return h.Sum()
	}
	a, b := sum(ds), sum(fuzzSeedDataset())
	if a != b {
		t.Fatalf("same dataset hashed differently: %s vs %s", a, b)
	}
	mut := fuzzSeedDataset()
	mut.RTT[0].Ms += 0.001
	if c := sum(mut); c == a {
		t.Fatal("hash did not change when a record changed")
	}
	if e := sum(&Dataset{}); e == a {
		t.Fatal("empty dataset hashed like a populated one")
	}
}

// TestRenumberMatchesMergeRenumbered: merging shard parts through the
// streaming Renumber wrapper equals the slice-level merge it replaced.
func TestRenumberMatchesMergeRenumbered(t *testing.T) {
	a, b := fuzzSeedDataset(), fuzzSeedDataset()
	want := MergeRenumbered(a, b)
	col := NewCollector(a.Seed)
	r := NewRenumber(col)
	a.EmitTo(r)
	r.Advance()
	b.EmitTo(r)
	r.Advance()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, col.Dataset()) {
		t.Fatal("Renumber stream merge differs from MergeRenumbered")
	}
}

// FuzzCSVRoundTrip mutates record fields, streams the dataset to disk with
// CSVWriter, and asserts that whatever LoadCompressed accepts streams back
// out byte-identically — the canonical gzip CSV form is a fixed point of
// stream-write ∘ load, exactly like the uncompressed Save ∘ Load pair.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add(42.5e6, 63.2, 12.5, "A-LTE-17", false)
	f.Add(0.0, -1.5, math.Inf(1), "cell,with\"quotes", true)
	f.Add(math.NaN(), 1e-300, -0.0, "", false)

	f.Fuzz(func(t *testing.T, bps, ms, km float64, cell string, nosvc bool) {
		ds := fuzzSeedDataset()
		ds.Thr[0].Bps = bps
		ds.RTT[1].Ms = ms
		ds.Passive[2].Km = km
		ds.Handovers[0].ToCell = cell
		ds.Passive[0].Cell = cell
		ds.Passive[1].NoSvc = nosvc

		dir1 := t.TempDir()
		w, err := NewCSVWriter(dir1)
		if err != nil {
			t.Fatal(err)
		}
		ds.EmitTo(w)
		if err := w.Flush(); err != nil {
			t.Fatalf("streaming a valid record set failed: %v", err)
		}
		back, err := LoadCompressed(dir1)
		if err != nil {
			// Rejection is fine (e.g. control characters in cell ids);
			// panics and accept-then-corrupt are not.
			return
		}
		dir2 := t.TempDir()
		w2, err := NewCSVWriter(dir2)
		if err != nil {
			t.Fatal(err)
		}
		back.EmitTo(w2)
		if err := w2.Flush(); err != nil {
			t.Fatalf("re-streaming an accepted dataset failed: %v", err)
		}
		for _, name := range csvFiles {
			b1, err := os.ReadFile(filepath.Join(dir1, name+".gz"))
			if err != nil {
				t.Fatal(err)
			}
			b2, err := os.ReadFile(filepath.Join(dir2, name+".gz"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("%s.gz: stream-write -> load -> stream-write is not byte-identical", name)
			}
		}
	})
}
