// Package deploy models the three carriers' radio deployments along the
// LA → Boston route: which technologies are available at each point, where
// the cells are, and how fragmented coverage is. The availability
// probabilities are calibrated to the paper's measured coverage shares
// (Figs. 2a, 2c, 2d): the paper's findings are *about* these deployment
// asymmetries, so we encode the measured asymmetries as model inputs and
// verify the rest of the pipeline re-derives the published shapes.
package deploy

import (
	"wheels/internal/geo"
	"wheels/internal/radio"
)

// availBase is the baseline probability that a given technology is deployed
// at a point, by operator, technology, and road class. The deployment
// strategies follow §4.2: Verizon prioritized mmWave in downtown areas,
// T-Mobile spread low/mid-band over large areas (the only carrier keeping
// mid-band on highways), AT&T leads in LTE-A but trails in 5G.
var availBase = map[radio.Operator]map[radio.Tech][3]float64{
	// Index order: [RoadCity, RoadSuburban, RoadHighway].
	radio.Verizon: {
		radio.LTE:   {0.97, 0.97, 0.97},
		radio.LTEA:  {0.93, 0.88, 0.84},
		radio.NRLow: {0.36, 0.22, 0.13},
		radio.NRMid: {0.42, 0.18, 0.10},
		radio.NRmmW: {0.55, 0.035, 0.004},
	},
	radio.TMobile: {
		radio.LTE:   {0.97, 0.97, 0.97},
		radio.LTEA:  {0.85, 0.82, 0.80},
		radio.NRLow: {0.80, 0.66, 0.58},
		radio.NRMid: {0.66, 0.54, 0.40},
		radio.NRmmW: {0.14, 0.004, 0.001},
	},
	radio.ATT: {
		radio.LTE:   {0.97, 0.97, 0.97},
		radio.LTEA:  {0.96, 0.94, 0.92},
		radio.NRLow: {0.50, 0.30, 0.20},
		radio.NRMid: {0.22, 0.035, 0.012},
		radio.NRmmW: {0.13, 0.002, 0.0005},
	},
}

// zoneScale captures Fig. 2c's regional diversity as multiplicative
// modifiers on 5G availability per timezone. 4G availability is uniform.
var zoneScale = map[radio.Operator]map[radio.Tech][geo.NumTimezones]float64{
	// Index order: [Pacific, Mountain, Central, Eastern].
	radio.Verizon: {
		// Verizon's 5G skews to the eastern half of the country.
		radio.NRLow: {0.9, 0.55, 1.25, 1.35},
		radio.NRMid: {0.9, 0.45, 1.30, 1.40},
		radio.NRmmW: {1.0, 0.7, 1.1, 1.2},
	},
	radio.TMobile: {
		// T-Mobile's mid-band is strongest in the Pacific timezone.
		radio.NRLow: {0.85, 0.95, 1.05, 1.0},
		radio.NRMid: {1.5, 0.75, 0.95, 1.0},
		radio.NRmmW: {1.0, 0.5, 1.0, 1.2},
	},
	radio.ATT: {
		// AT&T has very little 5G in the Mountain and Central timezones.
		radio.NRLow: {1.5, 0.35, 0.55, 1.35},
		radio.NRMid: {1.4, 0.3, 0.5, 1.3},
		radio.NRmmW: {1.2, 0.4, 0.6, 1.2},
	},
}

// runLengthKm is the mean length of a contiguous covered (or uncovered) run
// for each technology: mmWave coverage is street-corner sized, low-band runs
// span many km. These drive coverage fragmentation and, downstream, the
// vertical-handover rate.
var runLengthKm = map[radio.Tech]float64{
	radio.LTE:   16,
	radio.LTEA:  11,
	radio.NRLow: 6,
	radio.NRMid: 2.6,
	radio.NRmmW: 0.5,
}

// availCeiling caps deployment probability: even LTE has dead spots, and
// density-scaled scenarios saturate here rather than reaching certainty.
const availCeiling = 0.97

// availability returns the probability that tech is deployed at the given
// road class and timezone for the operator.
func availability(op radio.Operator, t radio.Tech, road geo.RoadClass, zone geo.Timezone) float64 {
	p := availBase[op][t][road]
	if s, ok := zoneScale[op][t]; ok {
		p *= s[zone]
	}
	if p > availCeiling {
		p = availCeiling
	}
	return p
}
