package deploy

import (
	"fmt"
	"math"

	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/sim"
)

// binKm is the spatial resolution of the availability fields.
const binKm = 0.1

// Cell identifies one base station of one operator and technology. Cells of
// a technology are laid out along the route with the band's inter-site
// spacing and a lateral offset from the road.
type Cell struct {
	Op        radio.Operator
	Tech      radio.Tech
	Index     int     // sequence number along the route for this (op, tech)
	CenterKm  float64 // route distance of the point nearest the site
	LateralKm float64
}

// ID returns a globally unique cell identifier, stable across runs.
func (c Cell) ID() string {
	return fmt.Sprintf("%s-%s-%d", c.Op.Short(), c.Tech, c.Index)
}

// lateralOffsetKm is the perpendicular distance from road to site per tech:
// mmWave sites hug the street; macro towers sit farther back.
func lateralOffsetKm(t radio.Tech) float64 {
	if t == radio.NRmmW {
		return 0.05
	}
	return 0.25
}

// Deployment is one operator's radio footprint along a route: a boolean
// availability field per technology (spatially persistent runs whose
// density follows the calibrated tables) plus deterministic cell geometry.
type Deployment struct {
	Op    radio.Operator
	Route *geo.Route

	nbins  int
	fields map[radio.Tech][]bool
}

// New builds the operator's deployment along the route. All randomness
// derives from the stream, so the footprint is reproducible per seed.
func New(route *geo.Route, op radio.Operator, rng *sim.RNG) *Deployment {
	d := &Deployment{
		Op:     op,
		Route:  route,
		nbins:  int(route.LengthKm()/binKm) + 1,
		fields: map[radio.Tech][]bool{},
	}
	for _, t := range radio.Techs() {
		d.fields[t] = d.buildField(t, rng.Stream("field", op.String(), t.String()))
	}
	return d
}

// buildField walks the route in binKm steps maintaining run-length state:
// the current covered/uncovered state persists for an exponential run, then
// re-draws from the local availability probability. This produces the
// fragmented, spatially correlated coverage the paper observed (Fig. 1).
func (d *Deployment) buildField(t radio.Tech, rng *sim.RNG) []bool {
	field := make([]bool, d.nbins)
	mean := runLengthKm[t]
	remaining := 0.0
	covered := false
	for i := 0; i < d.nbins; i++ {
		km := float64(i) * binKm
		if remaining <= 0 {
			p := availability(d.Op, t, d.Route.RoadClassAt(km), d.Route.TimezoneAt(km))
			covered = rng.Bool(p)
			remaining = rng.Exponential(mean)
			if remaining < binKm {
				remaining = binKm
			}
		}
		field[i] = covered
		remaining -= binKm
	}
	return field
}

func (d *Deployment) bin(km float64) int {
	i := int(km / binKm)
	if i < 0 {
		return 0
	}
	if i >= d.nbins {
		return d.nbins - 1
	}
	return i
}

// HasTech reports whether the technology is deployed at route distance km.
func (d *Deployment) HasTech(km float64, t radio.Tech) bool {
	return d.fields[t][d.bin(km)]
}

// Available returns the technologies deployed at route distance km, in
// ascending capability order.
func (d *Deployment) Available(km float64) []radio.Tech {
	var out []radio.Tech
	for _, t := range radio.Techs() {
		if d.HasTech(km, t) {
			out = append(out, t)
		}
	}
	return out
}

// CellAt returns the serving cell for the technology at route distance km
// and the UE's 2-D distance to it. The cell grid is deterministic: site i of
// a band sits at route distance (i+0.5)·spacing with the band's lateral
// offset, so cell identity is stable across runs and revisits.
func (d *Deployment) CellAt(km float64, t radio.Tech) (Cell, float64) {
	spacing := radio.Bands(d.Op, t).CellSpacingKm
	idx := int(km / spacing)
	if idx < 0 {
		idx = 0
	}
	center := (float64(idx) + 0.5) * spacing
	lat := lateralOffsetKm(t)
	dist := math.Hypot(km-center, lat)
	return Cell{Op: d.Op, Tech: t, Index: idx, CenterKm: center, LateralKm: lat}, dist
}

// CoverageFraction returns the fraction of route bins where the technology
// is deployed — a diagnostic used by calibration tests, not by the policy.
func (d *Deployment) CoverageFraction(t radio.Tech) float64 {
	n := 0
	for _, c := range d.fields[t] {
		if c {
			n++
		}
	}
	return float64(n) / float64(d.nbins)
}

// BestAvailable returns the most capable technology deployed at km, or
// (LTE, false) when the UE has no service at all.
func (d *Deployment) BestAvailable(km float64) (radio.Tech, bool) {
	techs := radio.Techs()
	for i := len(techs) - 1; i >= 0; i-- {
		if d.HasTech(km, techs[i]) {
			return techs[i], true
		}
	}
	return radio.LTE, false
}
