package deploy

import (
	"fmt"
	"math"

	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/sim"
)

// binKm is the spatial resolution of the availability fields.
const binKm = 0.1

// TechMask is the packed per-bin technology availability set: bit t is set
// when radio.Tech(t) is deployed in the bin. One byte replaces the
// per-query slice the availability API used to allocate, which is what
// keeps the per-tick radio loop allocation-free.
type TechMask uint8

// Has reports whether the technology is in the mask.
func (m TechMask) Has(t radio.Tech) bool { return m&(1<<uint(t)) != 0 }

// Count returns the number of technologies in the mask.
func (m TechMask) Count() int {
	n := 0
	for t := radio.Tech(0); t < radio.NumTechs; t++ {
		if m.Has(t) {
			n++
		}
	}
	return n
}

// Best returns the most capable technology in the mask, or (LTE, false) for
// an empty mask. Technologies are ordered by ascending capability.
func (m TechMask) Best() (radio.Tech, bool) {
	for t := radio.Tech(radio.NumTechs - 1); t >= 0; t-- {
		if m.Has(t) {
			return t, true
		}
	}
	return radio.LTE, false
}

// Techs appends the mask's technologies to buf in ascending capability
// order and returns the result. Pass a stack-backed buffer to avoid
// allocation.
func (m TechMask) Techs(buf []radio.Tech) []radio.Tech {
	for _, t := range radio.Techs() {
		if m.Has(t) {
			buf = append(buf, t)
		}
	}
	return buf
}

// Cell identifies one base station of one operator and technology. Cells of
// a technology are laid out along the route with the band's inter-site
// spacing and a lateral offset from the road.
type Cell struct {
	Op        radio.Operator
	Tech      radio.Tech
	Index     int     // sequence number along the route for this (op, tech)
	CenterKm  float64 // route distance of the point nearest the site
	LateralKm float64
}

// CellKey packs a cell's identity (operator, technology, route index) into
// one comparable word. The hot path tracks camped cells and signaling
// targets by key; the human-readable string form is derived only at
// dataset-export time.
type CellKey uint64

// Key returns the packed identity of the cell.
func (c Cell) Key() CellKey {
	return CellKey(uint64(c.Op)<<40 | uint64(c.Tech)<<32 | uint64(uint32(c.Index)))
}

// Op returns the operator encoded in the key.
func (k CellKey) Op() radio.Operator { return radio.Operator(k >> 40 & 0xff) }

// Tech returns the technology encoded in the key.
func (k CellKey) Tech() radio.Tech { return radio.Tech(k >> 32 & 0xff) }

// Index returns the route sequence number encoded in the key.
func (k CellKey) Index() int { return int(uint32(k)) }

// String renders the key in the stable "<op>-<tech>-<index>" form the
// dataset exports use.
func (k CellKey) String() string {
	return fmt.Sprintf("%s-%s-%d", k.Op().Short(), k.Tech(), k.Index())
}

// ID returns a globally unique cell identifier, stable across runs.
func (c Cell) ID() string { return c.Key().String() }

// lateralOffsetKm is the perpendicular distance from road to site per tech:
// mmWave sites hug the street; macro towers sit farther back.
func lateralOffsetKm(t radio.Tech) float64 {
	if t == radio.NRmmW {
		return 0.05
	}
	return 0.25
}

// Deployment is one operator's radio footprint along a route: a packed
// availability bitmask per route bin (spatially persistent runs whose
// density follows the calibrated tables) plus deterministic cell geometry.
type Deployment struct {
	Op    radio.Operator
	Route *geo.Route

	nbins int
	masks []TechMask

	// Per-technology band geometry, hoisted out of the per-tick loop so
	// serving-cell lookups don't re-derive radio.Bands each call.
	spacingKm [radio.NumTechs]float64
	lateralKm [radio.NumTechs]float64
}

// Density scales one operator's deployment away from the calibrated paper
// tables, per technology. Avail multiplies the local availability
// probability (clamped to the same 0.97 ceiling the tables obey); RunLen
// multiplies the mean coverage run length. All-ones means the paper's
// deployment exactly: scaling by 1.0 is a bit-exact no-op, so the paper
// scenario's coverage fields are byte-identical to an unscaled build.
// Scenarios use this to model denser mid-band/mmWave metros or sparser
// rural 5G without touching the calibration tables.
type Density struct {
	Avail  [radio.NumTechs]float64
	RunLen [radio.NumTechs]float64
}

// DefaultDensity returns the identity scaling (the paper's deployment).
func DefaultDensity() Density {
	var d Density
	for t := range d.Avail {
		d.Avail[t] = 1
		d.RunLen[t] = 1
	}
	return d
}

// New builds the operator's deployment along the route. All randomness
// derives from the stream, so the footprint is reproducible per seed.
func New(route *geo.Route, op radio.Operator, rng *sim.RNG) *Deployment {
	return NewUpTo(route, op, rng, 0)
}

// NewUpTo is New with the availability fields built only for the first
// maxKm of the route (maxKm <= 0 or past the route end means the whole
// route). The run-length walk in buildField is prefix-deterministic — bin i
// depends only on draws for bins ≤ i — so a truncated deployment's masks
// are bit-identical to the full build over every bin it has, and a campaign
// bounded by a KmLimit can skip simulating coverage for the days of route
// it will never drive. Callers must never query past maxKm: the bin clamp
// would silently return the edge bin's mask instead of the true one.
func NewUpTo(route *geo.Route, op radio.Operator, rng *sim.RNG, maxKm float64) *Deployment {
	return NewUpToDensity(route, op, rng, maxKm, DefaultDensity())
}

// NewUpToDensity is NewUpTo with the operator's deployment density scaled
// by den. The identity scaling reproduces NewUpTo bit for bit: every stream
// label and draw is unchanged, and ×1.0 on the probability and run-length
// mean leaves each draw's arguments exactly equal.
func NewUpToDensity(route *geo.Route, op radio.Operator, rng *sim.RNG, maxKm float64, den Density) *Deployment {
	lengthKm := route.LengthKm()
	if maxKm > 0 && maxKm < lengthKm {
		lengthKm = maxKm
	}
	d := &Deployment{
		Op:    op,
		Route: route,
		nbins: int(lengthKm/binKm) + 1,
	}
	d.masks = make([]TechMask, d.nbins)
	for _, t := range radio.Techs() {
		d.buildField(t, rng.Stream("field", op.String(), t.String()), den)
		d.spacingKm[t] = radio.Bands(op, t).CellSpacingKm
		d.lateralKm[t] = lateralOffsetKm(t)
	}
	return d
}

// buildField walks the route in binKm steps maintaining run-length state:
// the current covered/uncovered state persists for an exponential run, then
// re-draws from the local availability probability. This produces the
// fragmented, spatially correlated coverage the paper observed (Fig. 1).
// Covered bins set the technology's bit in the packed mask.
func (d *Deployment) buildField(t radio.Tech, rng *sim.RNG, den Density) {
	mean := runLengthKm[t] * den.RunLen[t]
	remaining := 0.0
	covered := false
	cur := d.Route.Cursor()
	bit := TechMask(1) << uint(t)
	for i := 0; i < d.nbins; i++ {
		km := float64(i) * binKm
		if remaining <= 0 {
			// The density scale applies after availability()'s internal
			// clamp, under the same 0.97 ceiling: with Avail == 1 the
			// multiply and the re-clamp are both exact no-ops.
			p := availability(d.Op, t, cur.RoadClassAt(km), cur.TimezoneAt(km)) * den.Avail[t]
			if p > availCeiling {
				p = availCeiling
			}
			covered = rng.Bool(p)
			remaining = rng.Exponential(mean)
			if remaining < binKm {
				remaining = binKm
			}
		}
		if covered {
			d.masks[i] |= bit
		}
		remaining -= binKm
	}
}

func (d *Deployment) bin(km float64) int {
	i := int(km / binKm)
	if i < 0 {
		return 0
	}
	if i >= d.nbins {
		return d.nbins - 1
	}
	return i
}

// AvailMask returns the packed set of technologies deployed at route
// distance km. This is the allocation-free form of Available.
func (d *Deployment) AvailMask(km float64) TechMask {
	return d.masks[d.bin(km)]
}

// HasTech reports whether the technology is deployed at route distance km.
func (d *Deployment) HasTech(km float64, t radio.Tech) bool {
	return d.masks[d.bin(km)].Has(t)
}

// Available returns the technologies deployed at route distance km, in
// ascending capability order. It is a compatibility wrapper over AvailMask
// and allocates; per-tick callers should use AvailMask.
func (d *Deployment) Available(km float64) []radio.Tech {
	m := d.AvailMask(km)
	if m == 0 {
		return nil
	}
	return m.Techs(make([]radio.Tech, 0, m.Count()))
}

// SpacingKm returns the inter-site distance of the technology's cell grid,
// precomputed at construction.
func (d *Deployment) SpacingKm(t radio.Tech) float64 { return d.spacingKm[t] }

// CellAt returns the serving cell for the technology at route distance km
// and the UE's 2-D distance to it. The cell grid is deterministic: site i of
// a band sits at route distance (i+0.5)·spacing with the band's lateral
// offset, so cell identity is stable across runs and revisits.
func (d *Deployment) CellAt(km float64, t radio.Tech) (Cell, float64) {
	spacing := d.spacingKm[t]
	idx := int(km / spacing)
	if idx < 0 {
		idx = 0
	}
	center := (float64(idx) + 0.5) * spacing
	lat := d.lateralKm[t]
	dist := math.Hypot(km-center, lat)
	return Cell{Op: d.Op, Tech: t, Index: idx, CenterKm: center, LateralKm: lat}, dist
}

// CoverageFraction returns the fraction of route bins where the technology
// is deployed — a diagnostic used by calibration tests, not by the policy.
func (d *Deployment) CoverageFraction(t radio.Tech) float64 {
	n := 0
	for _, m := range d.masks {
		if m.Has(t) {
			n++
		}
	}
	return float64(n) / float64(d.nbins)
}

// BestAvailable returns the most capable technology deployed at km, or
// (LTE, false) when the UE has no service at all.
func (d *Deployment) BestAvailable(km float64) (radio.Tech, bool) {
	return d.AvailMask(km).Best()
}
