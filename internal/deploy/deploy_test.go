package deploy

import (
	"testing"

	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/sim"
)

func testDeployment(t *testing.T, op radio.Operator) *Deployment {
	t.Helper()
	return New(geo.NewRoute(), op, sim.NewRNG(23).Stream("deploy"))
}

func TestDeterminism(t *testing.T) {
	a := testDeployment(t, radio.Verizon)
	b := testDeployment(t, radio.Verizon)
	for km := 0.0; km < a.Route.LengthKm(); km += 1.7 {
		for _, tech := range radio.Techs() {
			if a.HasTech(km, tech) != b.HasTech(km, tech) {
				t.Fatalf("deployments diverge at km %.1f tech %v", km, tech)
			}
		}
	}
}

func TestCoverageOrderingAcrossOperators(t *testing.T) {
	// Fig. 2a: T-Mobile leads 5G coverage by a wide margin; Verizon leads
	// mmWave; AT&T leads LTE-A.
	frac := func(op radio.Operator, tech radio.Tech) float64 {
		return testDeployment(t, op).CoverageFraction(tech)
	}
	if tm, v := frac(radio.TMobile, radio.NRMid), frac(radio.Verizon, radio.NRMid); tm < 2*v {
		t.Errorf("T-Mobile mid-band coverage %.2f not well above Verizon %.2f", tm, v)
	}
	if v, tm := frac(radio.Verizon, radio.NRmmW), frac(radio.TMobile, radio.NRmmW); v <= tm {
		t.Errorf("Verizon mmWave coverage %.3f not above T-Mobile %.3f", v, tm)
	}
	if a, v := frac(radio.ATT, radio.LTEA), frac(radio.Verizon, radio.LTEA); a <= v {
		t.Errorf("AT&T LTE-A coverage %.2f not above Verizon %.2f", a, v)
	}
	if a, tm := frac(radio.ATT, radio.NRMid), frac(radio.TMobile, radio.NRMid); a >= tm/4 {
		t.Errorf("AT&T mid-band coverage %.3f not far below T-Mobile %.3f", a, tm)
	}
}

func TestCoverageBands(t *testing.T) {
	// Availability of mid-band for T-Mobile should land in the ballpark of
	// the paper's 38% high-speed-5G connected share.
	tm := testDeployment(t, radio.TMobile).CoverageFraction(radio.NRMid)
	if tm < 0.25 || tm > 0.55 {
		t.Errorf("T-Mobile mid-band availability = %.2f, want 0.25-0.55", tm)
	}
	// LTE is the near-universal fallback for everyone.
	for _, op := range radio.Operators() {
		if lte := testDeployment(t, op).CoverageFraction(radio.LTE); lte < 0.9 {
			t.Errorf("%v LTE availability = %.2f, want > 0.9", op, lte)
		}
	}
}

func TestMmWaveConcentratedInCities(t *testing.T) {
	d := testDeployment(t, radio.Verizon)
	r := d.Route
	cityHits, citySamples := 0, 0
	hwyHits, hwySamples := 0, 0
	for km := 0.0; km < r.LengthKm(); km += binKm {
		switch r.RoadClassAt(km) {
		case geo.RoadCity:
			citySamples++
			if d.HasTech(km, radio.NRmmW) {
				cityHits++
			}
		case geo.RoadHighway:
			hwySamples++
			if d.HasTech(km, radio.NRmmW) {
				hwyHits++
			}
		}
	}
	cityFrac := float64(cityHits) / float64(citySamples)
	hwyFrac := float64(hwyHits) / float64(hwySamples)
	if cityFrac < 10*hwyFrac {
		t.Errorf("mmWave city availability %.3f not ≫ highway %.4f", cityFrac, hwyFrac)
	}
}

func TestZoneDiversity(t *testing.T) {
	// Fig. 2c: T-Mobile's mid-band is much stronger in the Pacific zone;
	// AT&T's 5G collapses in the Mountain zone.
	tm := testDeployment(t, radio.TMobile)
	att := testDeployment(t, radio.ATT)
	zoneFrac := func(d *Deployment, tech radio.Tech, zone geo.Timezone) float64 {
		hits, n := 0, 0
		for km := 0.0; km < d.Route.LengthKm(); km += binKm {
			if d.Route.TimezoneAt(km) != zone {
				continue
			}
			n++
			if d.HasTech(km, tech) {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}
	if p, m := zoneFrac(tm, radio.NRMid, geo.Pacific), zoneFrac(tm, radio.NRMid, geo.Mountain); p <= m {
		t.Errorf("T-Mobile mid-band: Pacific %.2f not above Mountain %.2f", p, m)
	}
	attMountain := zoneFrac(att, radio.NRLow, geo.Mountain) + zoneFrac(att, radio.NRMid, geo.Mountain)
	attEastern := zoneFrac(att, radio.NRLow, geo.Eastern) + zoneFrac(att, radio.NRMid, geo.Eastern)
	if attMountain >= attEastern/2 {
		t.Errorf("AT&T 5G: Mountain %.2f not far below Eastern %.2f", attMountain, attEastern)
	}
}

func TestCellGeometry(t *testing.T) {
	d := testDeployment(t, radio.TMobile)
	spacing := radio.Bands(radio.TMobile, radio.NRMid).CellSpacingKm
	c1, dist1 := d.CellAt(spacing*0.5, radio.NRMid) // at the site
	if dist1 > lateralOffsetKm(radio.NRMid)+1e-9 {
		t.Errorf("distance at cell center = %.3f, want lateral offset %.3f", dist1, lateralOffsetKm(radio.NRMid))
	}
	c2, dist2 := d.CellAt(spacing*0.999, radio.NRMid) // cell edge
	if c1.Index != c2.Index {
		t.Error("positions within one spacing mapped to different cells")
	}
	if dist2 <= dist1 {
		t.Error("distance at cell edge not above distance at center")
	}
	c3, _ := d.CellAt(spacing*1.001, radio.NRMid)
	if c3.Index != c1.Index+1 {
		t.Errorf("next cell index = %d, want %d", c3.Index, c1.Index+1)
	}
	if c1.ID() == c3.ID() {
		t.Error("adjacent cells share an ID")
	}
	if c1.ID() != "T-5G-mid-0" {
		t.Errorf("cell ID = %q, want T-5G-mid-0", c1.ID())
	}
}

func TestAvailableSortedAndConsistent(t *testing.T) {
	d := testDeployment(t, radio.Verizon)
	for km := 0.0; km < d.Route.LengthKm(); km += 3.3 {
		av := d.Available(km)
		for i := 1; i < len(av); i++ {
			if av[i] <= av[i-1] {
				t.Fatalf("Available(%0.f) not ascending: %v", km, av)
			}
		}
		best, ok := d.BestAvailable(km)
		if len(av) == 0 {
			if ok {
				t.Fatalf("BestAvailable reported service with empty set at km %.0f", km)
			}
			continue
		}
		if !ok || best != av[len(av)-1] {
			t.Fatalf("BestAvailable(%0.f) = %v/%v, want %v", km, best, ok, av[len(av)-1])
		}
	}
}

func TestFragmentation(t *testing.T) {
	// Coverage must be fragmented: mid-band coverage should flip state many
	// times across the route (Fig. 1 shows highly fragmented technology
	// bands), not be one contiguous blob.
	d := testDeployment(t, radio.TMobile)
	flips := 0
	prev := d.HasTech(0, radio.NRMid)
	for km := binKm; km < d.Route.LengthKm(); km += binKm {
		cur := d.HasTech(km, radio.NRMid)
		if cur != prev {
			flips++
		}
		prev = cur
	}
	if flips < 200 {
		t.Errorf("mid-band coverage flips = %d, want heavily fragmented (>= 200)", flips)
	}
}
