package deploy

import (
	"testing"

	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/sim"
)

// BenchmarkAvailMask times the packed availability lookup the radio loop
// performs every tick.
func BenchmarkAvailMask(b *testing.B) {
	route := geo.NewRoute()
	d := New(route, radio.TMobile, sim.NewRNG(23).Stream("deploy"))
	total := route.LengthKm()
	km := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.AvailMask(km)
		km += 0.337
		if km >= total {
			km = 0
		}
	}
}

// TestAvailMaskAllocationFree pins the mask lookup — and the mask-derived
// queries the UE hot path uses — at zero heap allocations.
func TestAvailMaskAllocationFree(t *testing.T) {
	route := geo.NewRoute()
	d := New(route, radio.Verizon, sim.NewRNG(23).Stream("deploy"))
	km := 0.0
	allocs := testing.AllocsPerRun(100, func() {
		m := d.AvailMask(km)
		_ = m.Has(radio.NRMid)
		_, _ = m.Best()
		_, _ = d.CellAt(km, radio.LTE)
		km += 1.7
	})
	if allocs != 0 {
		t.Errorf("AvailMask path = %.1f allocs/op, want 0", allocs)
	}
}

// TestAvailMaskMatchesAvailable verifies the packed mask and the
// compatibility slice API answer identically along the whole route.
func TestAvailMaskMatchesAvailable(t *testing.T) {
	route := geo.NewRoute()
	d := New(route, radio.TMobile, sim.NewRNG(23).Stream("deploy"))
	for km := 0.0; km < route.LengthKm(); km += 0.25 {
		mask := d.AvailMask(km)
		slice := d.Available(km)
		if mask.Count() != len(slice) {
			t.Fatalf("km %.2f: mask has %d techs, slice has %d", km, mask.Count(), len(slice))
		}
		for _, tech := range slice {
			if !mask.Has(tech) {
				t.Fatalf("km %.2f: slice reports %v but mask lacks it", km, tech)
			}
			if d.HasTech(km, tech) != mask.Has(tech) {
				t.Fatalf("km %.2f: HasTech and mask disagree on %v", km, tech)
			}
		}
		wantBest, wantOK := mask.Best()
		gotBest, gotOK := d.BestAvailable(km)
		if wantBest != gotBest || wantOK != gotOK {
			t.Fatalf("km %.2f: BestAvailable (%v,%v) != mask.Best (%v,%v)",
				km, gotBest, gotOK, wantBest, wantOK)
		}
	}
}

// TestCellKeyRoundTrip checks the packed cell key preserves identity and
// renders the same string the Cell itself does.
func TestCellKeyRoundTrip(t *testing.T) {
	for _, op := range radio.Operators() {
		for _, tech := range radio.Techs() {
			for _, idx := range []int{0, 1, 7, 593, 1 << 20} {
				c := Cell{Op: op, Tech: tech, Index: idx}
				k := c.Key()
				if k.Op() != op || k.Tech() != tech || k.Index() != idx {
					t.Fatalf("key round trip lost identity: %v/%v/%d -> %v/%v/%d",
						op, tech, idx, k.Op(), k.Tech(), k.Index())
				}
				if k.String() != c.ID() {
					t.Fatalf("key string %q != cell ID %q", k.String(), c.ID())
				}
			}
		}
	}
	a := Cell{Op: radio.Verizon, Tech: radio.LTE, Index: 3}.Key()
	b := Cell{Op: radio.Verizon, Tech: radio.LTEA, Index: 3}.Key()
	if a == b {
		t.Error("keys of different technologies collide")
	}
}
