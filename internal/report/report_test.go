package report

import (
	"strings"
	"testing"
	"time"

	"wheels/internal/dataset"
	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/servers"
)

func smallDS() *dataset.Dataset {
	t0 := time.Date(2022, 8, 8, 15, 0, 0, 0, time.UTC)
	ds := &dataset.Dataset{Seed: 23}
	for i := 0; i < 30; i++ {
		for _, op := range radio.Operators() {
			ds.Thr = append(ds.Thr, dataset.ThroughputSample{
				TestID: 1 + int(op), Op: op, Dir: radio.Downlink, Bps: float64(5+i) * 1e6,
				Tech: radio.LTEA, TimeUTC: t0.Add(time.Duration(i) * time.Second),
				MPH: 60, Zone: geo.Pacific, Road: geo.RoadHighway, Server: servers.Cloud,
			})
			ds.RTT = append(ds.RTT, dataset.RTTSample{
				Op: op, Ms: float64(60 + i), Tech: radio.LTEA,
				TimeUTC: t0.Add(time.Duration(i) * time.Second), MPH: 60,
			})
		}
	}
	ds.Tests = append(ds.Tests, dataset.TestSummary{
		ID: 1, Op: radio.Verizon, Kind: dataset.TestBulkDL, Dir: radio.Downlink,
		MeanBps: 20e6, Miles: 0.5, HOCount: 1, DurSec: 30,
	})
	ds.Handovers = append(ds.Handovers, dataset.HandoverRecord{
		Op: radio.Verizon, Dir: radio.Downlink, DurSec: 0.05,
		FromTech: radio.LTE, ToTech: radio.LTEA, FromCell: "a", ToCell: "b", TimeUTC: t0,
	})
	ds.Apps = append(ds.Apps, dataset.AppRun{
		Op: radio.Verizon, App: dataset.TestAR, Compressed: true,
		MedianE2EMs: 200, OffloadFPS: 4, MAP: 29, StartUTC: t0, DurSec: 20,
	})
	return ds
}

func TestBuildReport(t *testing.T) {
	out, err := Build(smallDS(), geo.NewRoute())
	if err != nil {
		t.Fatal(err)
	}
	html := string(out)
	for _, want := range []string{
		"<!DOCTYPE html>",
		"reproduction report",
		"Table 1", "Fig. 3", "Table 2", "Fig. 13", "Extensions",
		"<svg", // at least one inline chart
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// No external references: the page must be self-contained. (The SVG
	// xmlns URI is a namespace identifier, not a fetched resource.)
	stripped := strings.ReplaceAll(html, `xmlns="http://www.w3.org/2000/svg"`, "")
	for _, banned := range []string{"http://", "https://", "<script", "src="} {
		if strings.Contains(stripped, banned) {
			t.Errorf("report contains external reference %q", banned)
		}
	}
}

func TestBuildReportRejectsEmptyDataset(t *testing.T) {
	if _, err := Build(&dataset.Dataset{}, geo.NewRoute()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestBuildReportDeterministic(t *testing.T) {
	a, err := Build(smallDS(), geo.NewRoute())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallDS(), geo.NewRoute())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("report not deterministic")
	}
}
