package report

import (
	"bytes"
	"html/template"
)

// Section is one titled block of a report page.
type Section struct {
	Title string
	Pre   string          // preformatted text figure, if any
	SVGs  []template.HTML // inline charts, if any
}

var pageTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; max-width: 72rem; margin: 2rem auto; padding: 0 1rem; color: #1a1a1a; }
h1 { font-size: 1.6rem; } h2 { font-size: 1.2rem; margin-top: 2.2rem; border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
pre { background: #f6f6f4; padding: .8rem; overflow-x: auto; font-size: .8rem; line-height: 1.35; }
.charts { display: flex; flex-wrap: wrap; gap: 1rem; }
.charts svg { border: 1px solid #eee; }
footer { margin-top: 3rem; color: #777; font-size: .8rem; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p>{{.Subtitle}}</p>
{{range .Sections}}<h2>{{.Title}}</h2>
{{if .Pre}}<pre>{{.Pre}}</pre>{{end}}
{{if .SVGs}}<div class="charts">{{range .SVGs}}{{.}}{{end}}</div>{{end}}
{{end}}
<footer>{{.Footer}}</footer>
</body>
</html>
`))

type page struct {
	Title    string
	Subtitle string
	Sections []Section
	Footer   string
}

// BuildPage renders a self-contained HTML page (no external assets) from
// titled sections — the shared skeleton of the campaign report and the
// fleet's cross-seed replication report.
func BuildPage(title, subtitle, footer string, sections []Section) ([]byte, error) {
	var buf bytes.Buffer
	if err := pageTmpl.Execute(&buf, page{Title: title, Subtitle: subtitle, Sections: sections, Footer: footer}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
