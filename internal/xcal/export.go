package xcal

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wheels/internal/radio"
)

// Exporter writes the raw measurement files for tests as the real testbed
// produced them: one XCAL .drm file (EDT content timestamps, zone-less
// local filename) and one application log (local time, no zone indicator)
// per test. Rebuilding the consolidated dataset from these files is the
// job of the C2 synchronization software — see Rebuild.
type Exporter struct {
	Dir string
}

// appLogName builds the app log file name for a test.
func appLogName(op radio.Operator, test string, startUTC time.Time, offsetHours int) string {
	local := startUTC.In(time.FixedZone("local", offsetHours*3600))
	return fmt.Sprintf("app_%s_%s_%s.log", op.Short(), test, local.Format(fileLayout))
}

// ExportTest writes the raw file pair for one test. offsetHours is the
// phone's local UTC offset at the time of the test.
func (e *Exporter) ExportTest(op radio.Operator, test string, startUTC time.Time, offsetHours int,
	kpis []KPIEntry, signals []SignalEvent, app []AppEntry) error {
	if err := os.MkdirAll(e.Dir, 0o755); err != nil {
		return err
	}
	drmPath := filepath.Join(e.Dir, Filename(op, test, startUTC, offsetHours))
	f, err := os.Create(drmPath)
	if err != nil {
		return err
	}
	if err := WriteLog(f, &Log{Op: op, Test: test, KPIs: kpis, Signals: signals}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	appPath := filepath.Join(e.Dir, appLogName(op, test, startUTC, offsetHours))
	f, err = os.Create(appPath)
	if err != nil {
		return err
	}
	if err := WriteAppLog(f, app, AppLocalNoZone, offsetHours); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RebuiltTest is one test reconstructed from its raw files.
type RebuiltTest struct {
	Op      radio.Operator
	Test    string
	Rows    []MergedRow
	Signals []SignalEvent
	// Unmatched counts app samples with no KPI row within tolerance.
	Unmatched int
}

// Rebuild reconstructs every test in the directory from its raw file pair
// and returns them all. It is RebuildStream with a collecting visitor;
// callers that reduce tests one at a time should stream instead and avoid
// holding every rebuilt row in memory.
func Rebuild(dir string, offsetAt func(utc time.Time) int) ([]RebuiltTest, error) {
	var out []RebuiltTest
	err := RebuildStream(dir, offsetAt, func(t RebuiltTest) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RebuildStream reconstructs each test in the directory from its raw file
// pair and hands it to visit as soon as it is rebuilt, holding only one
// test's rows at a time. It uses the supplied offset lookup (UTC offset in
// effect at a given instant — in the real pipeline this came from the GPS
// track; here the route provides it). This is the full C2 flow: parse the
// zone-less filenames, recover UTC, match app logs to .drm files, and join
// samples with KPI rows. A visit error aborts the walk and is returned.
func RebuildStream(dir string, offsetAt func(utc time.Time) int, visit func(RebuiltTest) error) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if filepath.Ext(name) != ".drm" {
			continue
		}
		op, test, localWall, err := ParseFilename(name)
		if err != nil {
			return err
		}
		// The filename's wall time is zone-less: recover UTC by probing
		// candidate offsets and keeping the one consistent with the
		// supplied context. US offsets during the trip span -7..-4.
		var startUTC time.Time
		found := false
		for off := -7; off <= -4; off++ {
			cand := localWall.Add(-time.Duration(off) * time.Hour)
			if offsetAt(cand) == off {
				startUTC, found = cand, true
				break
			}
		}
		if !found {
			return fmt.Errorf("xcal: no consistent timezone for %s", name)
		}
		offset := offsetAt(startUTC)

		drmFile, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		log, err := ParseLog(drmFile)
		drmFile.Close()
		if err != nil {
			return fmt.Errorf("xcal: %s: %v", name, err)
		}

		appName := appLogName(op, test, startUTC, offset)
		appFile, err := os.Open(filepath.Join(dir, appName))
		if err != nil {
			return fmt.Errorf("xcal: missing app log for %s: %v", name, err)
		}
		app, err := ParseAppLog(appFile, AppLocalNoZone, offset)
		appFile.Close()
		if err != nil {
			return fmt.Errorf("xcal: %s: %v", appName, err)
		}
		if len(app) > 0 {
			if err := MatchFile(app[0].TimeUTC, name, offset, 2*time.Minute); err != nil {
				return err
			}
		}
		res := Sync(app, log.KPIs)
		if err := visit(RebuiltTest{
			Op: op, Test: test, Rows: res.Rows, Signals: log.Signals, Unmatched: res.Unmatched,
		}); err != nil {
			return err
		}
	}
	return nil
}
