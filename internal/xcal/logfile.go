package xcal

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"wheels/internal/radio"
)

// Row tags in the .drm content.
const (
	rowKPI = "KPI"
	rowSig = "HO"
)

// WriteLog serializes a Log in the .drm content format: one line per KPI
// row or signaling event, timestamps in EDT with no year.
func WriteLog(w io.Writer, log *Log) error {
	bw := bufio.NewWriter(w)
	for _, k := range log.KPIs {
		_, err := fmt.Fprintf(bw, "%s,%s,%s,%.1f,%.1f,%d,%.4f,%d,%d,%.1f\n",
			FormatContentTime(k.TimeUTC), rowKPI, k.Tech, k.RSRPdBm, k.SINRdB,
			k.MCS, k.BLER, k.CCDown, k.CCUp, k.MPH)
		if err != nil {
			return err
		}
	}
	for _, s := range log.Signals {
		_, err := fmt.Fprintf(bw, "%s,%s,%s,%s,%s,%s,%.1f\n",
			FormatContentTime(s.TimeUTC), rowSig, s.FromTech, s.ToTech,
			s.FromCell, s.ToCell, s.DurMs)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func parseTech(s string) (radio.Tech, error) {
	for _, t := range radio.Techs() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("xcal: unknown technology %q", s)
}

// ParseLog parses .drm content. Rows are returned in file order; KPI and
// signaling rows may interleave.
func ParseLog(r io.Reader) (*Log, error) {
	log := &Log{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("xcal: line %d: too few fields", line)
		}
		ts, err := ParseContentTime(fields[0])
		if err != nil {
			return nil, fmt.Errorf("xcal: line %d: %v", line, err)
		}
		switch fields[1] {
		case rowKPI:
			if len(fields) != 10 {
				return nil, fmt.Errorf("xcal: line %d: KPI row has %d fields, want 10", line, len(fields))
			}
			tech, err := parseTech(fields[2])
			if err != nil {
				return nil, fmt.Errorf("xcal: line %d: %v", line, err)
			}
			var k KPIEntry
			k.TimeUTC = ts
			k.Tech = tech
			if k.RSRPdBm, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return nil, fmt.Errorf("xcal: line %d: rsrp: %v", line, err)
			}
			if k.SINRdB, err = strconv.ParseFloat(fields[4], 64); err != nil {
				return nil, fmt.Errorf("xcal: line %d: sinr: %v", line, err)
			}
			if k.MCS, err = strconv.Atoi(fields[5]); err != nil {
				return nil, fmt.Errorf("xcal: line %d: mcs: %v", line, err)
			}
			if k.BLER, err = strconv.ParseFloat(fields[6], 64); err != nil {
				return nil, fmt.Errorf("xcal: line %d: bler: %v", line, err)
			}
			if k.CCDown, err = strconv.Atoi(fields[7]); err != nil {
				return nil, fmt.Errorf("xcal: line %d: ccdown: %v", line, err)
			}
			if k.CCUp, err = strconv.Atoi(fields[8]); err != nil {
				return nil, fmt.Errorf("xcal: line %d: ccup: %v", line, err)
			}
			if k.MPH, err = strconv.ParseFloat(fields[9], 64); err != nil {
				return nil, fmt.Errorf("xcal: line %d: mph: %v", line, err)
			}
			log.KPIs = append(log.KPIs, k)
		case rowSig:
			if len(fields) != 7 {
				return nil, fmt.Errorf("xcal: line %d: HO row has %d fields, want 7", line, len(fields))
			}
			from, err := parseTech(fields[2])
			if err != nil {
				return nil, fmt.Errorf("xcal: line %d: %v", line, err)
			}
			to, err := parseTech(fields[3])
			if err != nil {
				return nil, fmt.Errorf("xcal: line %d: %v", line, err)
			}
			dur, err := strconv.ParseFloat(fields[6], 64)
			if err != nil {
				return nil, fmt.Errorf("xcal: line %d: dur: %v", line, err)
			}
			log.Signals = append(log.Signals, SignalEvent{
				TimeUTC: ts, FromTech: from, ToTech: to,
				FromCell: fields[4], ToCell: fields[5], DurMs: dur,
			})
		default:
			return nil, fmt.Errorf("xcal: line %d: unknown row tag %q", line, fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return log, nil
}
