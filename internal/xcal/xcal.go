// Package xcal reproduces the paper's measurement-logging substrate and the
// synchronization software built for challenge C2 (§3, Appendix B):
//
//   - XCAL-Solo-style log files (.drm): the filename carries a *local*
//     timestamp with no zone indicator, while the file contents carry
//     timestamps in EDT regardless of where in the country they were logged.
//   - Application logs: some apps log in UTC, others in local time without
//     a zone indicator.
//   - A synchronizer that maps each app-layer log to its XCAL counterpart,
//     normalizes the three timestamp conventions to UTC (taking into account
//     the four timezones the trip crosses), and joins app samples with the
//     PHY KPI rows into consolidated records.
//
// The formats are deliberately lossy and annoying in exactly the ways the
// paper describes, so the synchronizer earns its keep.
package xcal

import (
	"fmt"
	"strings"
	"time"

	"wheels/internal/radio"
)

// KPIEntry is one XCAL PHY-layer KPI row (logged every 500 ms).
type KPIEntry struct {
	TimeUTC time.Time
	Tech    radio.Tech
	RSRPdBm float64
	SINRdB  float64
	MCS     int
	BLER    float64
	CCDown  int
	CCUp    int
	MPH     float64
}

// SignalEvent is one control-plane signaling record (handover).
type SignalEvent struct {
	TimeUTC  time.Time
	FromTech radio.Tech
	ToTech   radio.Tech
	FromCell string
	ToCell   string
	DurMs    float64
}

// Log is the parsed content of one XCAL file.
type Log struct {
	Op      radio.Operator
	Test    string // test kind tag from the filename
	KPIs    []KPIEntry
	Signals []SignalEvent
}

// edt is the fixed zone XCAL uses for file *contents*, year-round per the
// vendor's convention (the trip was in August, daylight time).
var edt = time.FixedZone("EDT", -4*3600)

// xcalYear is the year implied by XCAL's in-file timestamps, which carry no
// year field (a real annoyance of the format the paper post-processed).
const xcalYear = 2022

// contentLayout is the in-file timestamp layout: month-day time, EDT, no year.
const contentLayout = "01-02 15:04:05.000"

// fileLayout is the timestamp embedded in the filename: local wall time,
// no zone indicator.
const fileLayout = "20060102_150405"

// FormatContentTime renders a UTC instant the way XCAL writes rows.
func FormatContentTime(utc time.Time) string {
	return utc.In(edt).Format(contentLayout)
}

// ParseContentTime recovers the UTC instant of an in-file timestamp.
func ParseContentTime(s string) (time.Time, error) {
	t, err := time.ParseInLocation(contentLayout, s, edt)
	if err != nil {
		return time.Time{}, err
	}
	return t.AddDate(xcalYear, 0, 0).UTC(), nil
}

// Filename builds the XCAL file name: operator short code, test tag, and
// the start time as local wall clock (offsetHours east of UTC is negative
// for the US), with no zone indicator — the format whose ambiguity §B calls
// out.
func Filename(op radio.Operator, test string, startUTC time.Time, offsetHours int) string {
	local := startUTC.In(time.FixedZone("local", offsetHours*3600))
	return fmt.Sprintf("XCAL_%s_%s_%s.drm", op.Short(), test, local.Format(fileLayout))
}

// ParseFilename extracts the operator, test tag, and *local* start time
// from an XCAL file name. The returned time is zone-less: the synchronizer
// must supply the offset from route context to recover UTC.
func ParseFilename(name string) (op radio.Operator, test string, localWall time.Time, err error) {
	const prefix, suffix = "XCAL_", ".drm"
	malformed := func() (radio.Operator, string, time.Time, error) {
		return 0, "", time.Time{}, fmt.Errorf("xcal: malformed filename %q", name)
	}
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return malformed()
	}
	body := name[len(prefix) : len(name)-len(suffix)] // "<op>_<test>_<yyyyMMdd>_<HHmmss>"
	if len(body) < len("V_x_20060102_150405") || body[1] != '_' {
		return malformed()
	}
	switch body[0] {
	case 'V':
		op = radio.Verizon
	case 'T':
		op = radio.TMobile
	case 'A':
		op = radio.ATT
	default:
		return 0, "", time.Time{}, fmt.Errorf("xcal: unknown operator code %q in %q", body[0], name)
	}
	stampStart := len(body) - len(fileLayout)
	if body[stampStart-1] != '_' {
		return malformed()
	}
	test = body[2 : stampStart-1]
	if test == "" {
		return malformed()
	}
	localWall, err = time.Parse(fileLayout, body[stampStart:])
	if err != nil {
		return 0, "", time.Time{}, fmt.Errorf("xcal: bad timestamp in %q: %v", name, err)
	}
	return op, test, localWall, nil
}
