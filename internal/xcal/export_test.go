package xcal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"wheels/internal/radio"
)

func exportSample(t *testing.T, dir string, op radio.Operator, tag string, start time.Time, offset int) {
	t.Helper()
	e := &Exporter{Dir: dir}
	kpis := []KPIEntry{
		{TimeUTC: start, Tech: radio.NRMid, RSRPdBm: -95, SINRdB: 14, MCS: 20, BLER: 0.05, CCDown: 2, CCUp: 1, MPH: 60},
		{TimeUTC: start.Add(500 * time.Millisecond), Tech: radio.NRMid, RSRPdBm: -96, SINRdB: 13, MCS: 19, BLER: 0.06, CCDown: 2, CCUp: 1, MPH: 61},
	}
	sigs := []SignalEvent{{
		TimeUTC: start.Add(time.Second), FromTech: radio.NRMid, ToTech: radio.LTEA,
		FromCell: "X-1", ToCell: "X-2", DurMs: 60,
	}}
	app := []AppEntry{
		{TimeUTC: start, Value: 42e6},
		{TimeUTC: start.Add(500 * time.Millisecond), Value: 43e6},
	}
	if err := e.ExportTest(op, tag, start, offset, kpis, sigs, app); err != nil {
		t.Fatal(err)
	}
}

func TestExportAndRebuild(t *testing.T) {
	dir := t.TempDir()
	start := time.Date(2022, 8, 10, 17, 30, 0, 0, time.UTC)
	exportSample(t, dir, radio.Verizon, "bulk-dl-7", start, -6)
	exportSample(t, dir, radio.TMobile, "bulk-ul-8", start.Add(time.Hour), -6)

	tests, err := Rebuild(dir, func(time.Time) int { return -6 })
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 2 {
		t.Fatalf("rebuilt %d tests, want 2", len(tests))
	}
	for _, rt := range tests {
		if len(rt.Rows) != 2 || rt.Unmatched != 0 {
			t.Errorf("%s/%s: rows=%d unmatched=%d", rt.Op, rt.Test, len(rt.Rows), rt.Unmatched)
		}
		if len(rt.Signals) != 1 || rt.Signals[0].DurMs != 60 {
			t.Errorf("signals not recovered: %+v", rt.Signals)
		}
		if rt.Rows[0].AppValue != 42e6 {
			t.Errorf("app value = %v", rt.Rows[0].AppValue)
		}
	}
}

func TestRebuildDetectsInconsistentTimezone(t *testing.T) {
	dir := t.TempDir()
	start := time.Date(2022, 8, 10, 17, 30, 0, 0, time.UTC)
	exportSample(t, dir, radio.ATT, "rtt-3", start, -6)
	// An offset function that never matches any candidate offset.
	if _, err := Rebuild(dir, func(time.Time) int { return 3 }); err == nil {
		t.Error("Rebuild succeeded with no consistent timezone")
	}
}

func TestRebuildMissingAppLog(t *testing.T) {
	dir := t.TempDir()
	start := time.Date(2022, 8, 10, 17, 30, 0, 0, time.UTC)
	exportSample(t, dir, radio.ATT, "rtt-3", start, -5)
	// Delete the app log; the rebuild must fail loudly, not silently drop.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	if _, err := Rebuild(dir, func(time.Time) int { return -5 }); err == nil {
		t.Error("Rebuild succeeded without the app log")
	}
}

func TestRebuildIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	start := time.Date(2022, 8, 10, 17, 30, 0, 0, time.UTC)
	exportSample(t, dir, radio.Verizon, "bulk-dl-1", start, -7)
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests, err := Rebuild(dir, func(time.Time) int { return -7 })
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 1 {
		t.Errorf("rebuilt %d tests, want 1", len(tests))
	}
}

func TestRebuildEmptyDir(t *testing.T) {
	tests, err := Rebuild(t.TempDir(), func(time.Time) int { return -5 })
	if err != nil || len(tests) != 0 {
		t.Errorf("empty dir: %v, %d tests", err, len(tests))
	}
	if _, err := Rebuild(filepath.Join(t.TempDir(), "nope"), func(time.Time) int { return -5 }); err == nil {
		t.Error("missing dir accepted")
	}
}
