package xcal

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"wheels/internal/radio"
)

var t0 = time.Date(2022, 8, 10, 17, 30, 15, 500e6, time.UTC)

func TestContentTimeRoundTrip(t *testing.T) {
	s := FormatContentTime(t0)
	// 17:30 UTC is 13:30 EDT.
	if s != "08-10 13:30:15.500" {
		t.Fatalf("FormatContentTime = %q", s)
	}
	back, err := ParseContentTime(s)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(t0) {
		t.Errorf("round trip = %v, want %v", back, t0)
	}
}

func TestFilenameRoundTrip(t *testing.T) {
	// Logged in Denver: local clock is MDT (UTC-6).
	name := Filename(radio.Verizon, "bulk-dl", t0, -6)
	if name != "XCAL_V_bulk-dl_20220810_113015.drm" {
		t.Fatalf("Filename = %q", name)
	}
	op, test, local, err := ParseFilename(name)
	if err != nil {
		t.Fatal(err)
	}
	if op != radio.Verizon || test != "bulk-dl" {
		t.Errorf("parsed op/test = %v/%q", op, test)
	}
	// The parsed wall time is zone-less; re-applying the offset recovers UTC.
	utc := local.Add(6 * time.Hour)
	if !utc.Equal(t0.Truncate(time.Second)) {
		t.Errorf("recovered UTC = %v, want %v", utc, t0.Truncate(time.Second))
	}
}

func TestParseFilenameRejectsGarbage(t *testing.T) {
	for _, name := range []string{
		"notxcal.drm",
		"XCAL_Q_bulk-dl_20220810_113015.drm",
		"XCAL_V_bulk-dl_2022081_113015.drm",
		"XCAL_V.drm",
	} {
		if _, _, _, err := ParseFilename(name); err == nil {
			t.Errorf("ParseFilename(%q) succeeded", name)
		}
	}
}

func sampleLog() *Log {
	return &Log{
		Op:   radio.TMobile,
		Test: "bulk-dl",
		KPIs: []KPIEntry{
			{TimeUTC: t0, Tech: radio.NRMid, RSRPdBm: -97.2, SINRdB: 12.5, MCS: 19, BLER: 0.0832, CCDown: 2, CCUp: 1, MPH: 64.2},
			{TimeUTC: t0.Add(500 * time.Millisecond), Tech: radio.NRMid, RSRPdBm: -98.1, SINRdB: 11.9, MCS: 18, BLER: 0.0911, CCDown: 2, CCUp: 1, MPH: 64.8},
		},
		Signals: []SignalEvent{
			{TimeUTC: t0.Add(700 * time.Millisecond), FromTech: radio.NRMid, ToTech: radio.LTEA,
				FromCell: "T-5G-mid-12", ToCell: "T-LTE-A-9", DurMs: 76.0},
		},
	}
}

func TestLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := sampleLog()
	if err := WriteLog(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.KPIs) != 2 || len(got.Signals) != 1 {
		t.Fatalf("parsed %d KPIs / %d signals", len(got.KPIs), len(got.Signals))
	}
	// Timestamps survive to the millisecond; floats to the printed precision.
	if !got.KPIs[0].TimeUTC.Equal(orig.KPIs[0].TimeUTC) {
		t.Errorf("KPI time = %v, want %v", got.KPIs[0].TimeUTC, orig.KPIs[0].TimeUTC)
	}
	if got.KPIs[0].Tech != radio.NRMid || got.KPIs[0].MCS != 19 || got.KPIs[0].CCDown != 2 {
		t.Errorf("KPI fields corrupted: %+v", got.KPIs[0])
	}
	if got.Signals[0].FromCell != "T-5G-mid-12" || got.Signals[0].DurMs != 76 {
		t.Errorf("signal fields corrupted: %+v", got.Signals[0])
	}
}

func TestParseLogRejectsCorruptLines(t *testing.T) {
	for _, content := range []string{
		"08-10 13:30:15.500,KPI,LTE,-90\n",                    // short KPI row
		"08-10 13:30:15.500,WAT,LTE,-90,5,3,0.1,1,1,10\n",     // unknown tag
		"08-10 13:30:15.500,KPI,4G,-90,5,3,0.1,1,1,10\n",      // unknown tech
		"not-a-time,KPI,LTE,-90,5,3,0.1,1,1,10\n",             // bad time
		"08-10 13:30:15.500,KPI,LTE,-90,5,three,0.1,1,1,10\n", // bad mcs
		"08-10 13:30:15.500,HO,LTE,LTE-A,a,b\n",               // short HO row
	} {
		if _, err := ParseLog(strings.NewReader(content)); err == nil {
			t.Errorf("ParseLog accepted %q", content)
		}
	}
}

func TestAppLogRoundTripUTC(t *testing.T) {
	entries := []AppEntry{
		{TimeUTC: t0, Value: 42.5e6},
		{TimeUTC: t0.Add(500 * time.Millisecond), Value: 0},
	}
	var buf bytes.Buffer
	if err := WriteAppLog(&buf, entries, AppUTC, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAppLog(&buf, AppUTC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entries, got) {
		t.Errorf("round trip = %+v, want %+v", got, entries)
	}
}

func TestAppLogRoundTripLocalNoZone(t *testing.T) {
	entries := []AppEntry{{TimeUTC: t0, Value: 81.5}}
	var buf bytes.Buffer
	// Phone clock in Pacific time (UTC-7).
	if err := WriteAppLog(&buf, entries, AppLocalNoZone, -7); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasPrefix(line, "08/10/2022 10:30:15.500,") {
		t.Fatalf("local-no-zone line = %q", line)
	}
	got, err := ParseAppLog(strings.NewReader(line), AppLocalNoZone, -7)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].TimeUTC.Equal(t0) {
		t.Errorf("recovered UTC = %v, want %v", got[0].TimeUTC, t0)
	}
	// Parsing with the WRONG offset shifts the timestamp — the failure mode
	// the synchronizer exists to prevent.
	wrong, err := ParseAppLog(strings.NewReader(line), AppLocalNoZone, -4)
	if err != nil {
		t.Fatal(err)
	}
	if wrong[0].TimeUTC.Equal(t0) {
		t.Error("parsing with the wrong timezone still recovered the right UTC")
	}
}

func TestSyncJoins(t *testing.T) {
	log := sampleLog()
	app := []AppEntry{
		{TimeUTC: t0.Add(80 * time.Millisecond), Value: 10e6},  // near KPI row 0
		{TimeUTC: t0.Add(520 * time.Millisecond), Value: 12e6}, // near KPI row 1
		{TimeUTC: t0.Add(5 * time.Second), Value: 1e6},         // no KPI row nearby
	}
	res := Sync(app, log.KPIs)
	if len(res.Rows) != 2 || res.Unmatched != 1 {
		t.Fatalf("Sync matched %d rows, %d unmatched; want 2/1", len(res.Rows), res.Unmatched)
	}
	if res.Rows[0].KPI.MCS != 19 {
		t.Errorf("first app sample joined with KPI %+v, want MCS 19 row", res.Rows[0].KPI)
	}
	if res.Rows[1].KPI.MCS != 18 {
		t.Errorf("second app sample joined with KPI %+v, want MCS 18 row", res.Rows[1].KPI)
	}
}

func TestSyncEmptyKPIs(t *testing.T) {
	res := Sync([]AppEntry{{TimeUTC: t0, Value: 1}}, nil)
	if len(res.Rows) != 0 || res.Unmatched != 1 {
		t.Errorf("Sync with no KPIs = %d rows / %d unmatched", len(res.Rows), res.Unmatched)
	}
}

func TestSyncUnsortedInputs(t *testing.T) {
	log := sampleLog()
	app := []AppEntry{
		{TimeUTC: t0.Add(520 * time.Millisecond), Value: 12e6},
		{TimeUTC: t0.Add(80 * time.Millisecond), Value: 10e6},
	}
	kpis := []KPIEntry{log.KPIs[1], log.KPIs[0]} // reversed
	res := Sync(app, kpis)
	if len(res.Rows) != 2 {
		t.Fatalf("Sync on unsorted input matched %d rows, want 2", len(res.Rows))
	}
}

func TestMatchFile(t *testing.T) {
	name := Filename(radio.ATT, "rtt", t0, -5) // logged on a Central-time clock
	if err := MatchFile(t0, name, -5, 2*time.Minute); err != nil {
		t.Errorf("MatchFile with correct offset failed: %v", err)
	}
	// Wrong timezone: an hour off, outside slack.
	if err := MatchFile(t0, name, -6, 2*time.Minute); err == nil {
		t.Error("MatchFile with wrong offset succeeded; the C2 bug would go unnoticed")
	}
}
