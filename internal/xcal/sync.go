package xcal

import (
	"fmt"
	"sort"
	"time"
)

// MergedRow is one consolidated record: an application sample joined with
// the nearest-in-time XCAL KPI row. This is the unit the paper's XCAP-M
// post-processing pipeline produced for analysis.
type MergedRow struct {
	TimeUTC  time.Time
	AppValue float64
	KPI      KPIEntry
}

// MatchToleranceMs is the maximum timestamp distance between an app sample
// and a KPI row for them to be considered the same 500 ms interval.
const MatchToleranceMs = 300

// SyncResult reports how the join went.
type SyncResult struct {
	Rows      []MergedRow
	Unmatched int // app entries with no KPI row within tolerance
}

// Sync joins app entries with KPI rows by timestamp. Both inputs must
// already be in UTC (use ParseAppLog / ParseLog, which normalize); Sync
// verifies ordering, sorts if needed, and uses a two-pointer merge.
func Sync(app []AppEntry, kpis []KPIEntry) SyncResult {
	a := append([]AppEntry(nil), app...)
	k := append([]KPIEntry(nil), kpis...)
	sort.Slice(a, func(i, j int) bool { return a[i].TimeUTC.Before(a[j].TimeUTC) })
	sort.Slice(k, func(i, j int) bool { return k[i].TimeUTC.Before(k[j].TimeUTC) })

	var res SyncResult
	tol := MatchToleranceMs * time.Millisecond
	j := 0
	for _, e := range a {
		// Advance j to the KPI row closest to e.
		for j+1 < len(k) && absDur(k[j+1].TimeUTC.Sub(e.TimeUTC)) <= absDur(k[j].TimeUTC.Sub(e.TimeUTC)) {
			j++
		}
		if len(k) == 0 || absDur(k[j].TimeUTC.Sub(e.TimeUTC)) > tol {
			res.Unmatched++
			continue
		}
		res.Rows = append(res.Rows, MergedRow{TimeUTC: e.TimeUTC, AppValue: e.Value, KPI: k[j]})
	}
	return res
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// MatchFile pairs an app log with its XCAL file: the operator and test tag
// must agree and the XCAL file's start time (filename local wall time,
// interpreted with the supplied offset) must fall within slack of the app
// log's first entry. This is the mapping step of the paper's C2 software:
// get the offset wrong by a timezone and nothing lines up.
func MatchFile(appStartUTC time.Time, xcalName string, offsetHours int, slack time.Duration) error {
	_, _, localWall, err := ParseFilename(xcalName)
	if err != nil {
		return err
	}
	fileUTC := localWall.Add(-time.Duration(offsetHours) * time.Hour)
	if d := absDur(fileUTC.Sub(appStartUTC)); d > slack {
		return fmt.Errorf("xcal: %s starts %v away from app log (offset %+dh); wrong file or wrong timezone",
			xcalName, d, offsetHours)
	}
	return nil
}
