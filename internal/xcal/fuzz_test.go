package xcal

import (
	"strings"
	"testing"
)

// The parsers ingest files whose formats are deliberately awkward (no year,
// no zone, mixed conventions); fuzzing guards against panics and
// round-trip inconsistencies on arbitrary input. The seeds run as part of
// the normal test suite; `go test -fuzz FuzzParseLog ./internal/xcal` digs
// deeper.

func FuzzParseLog(f *testing.F) {
	f.Add("08-10 13:30:15.500,KPI,LTE,-90.0,5.0,3,0.1000,1,1,10.0\n")
	f.Add("08-10 13:30:15.500,HO,LTE,LTE-A,a,b,53.0\n")
	f.Add("")
	f.Add("garbage\n\n,,,,\n")
	f.Add("08-10 13:30:15.500,KPI")
	f.Fuzz(func(t *testing.T, content string) {
		log, err := ParseLog(strings.NewReader(content))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must re-serialize and re-parse to the same
		// number of rows.
		var buf strings.Builder
		if err := WriteLog(&buf, log); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
		back, err := ParseLog(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back.KPIs) != len(log.KPIs) || len(back.Signals) != len(log.Signals) {
			t.Fatalf("round trip changed row counts: %d/%d -> %d/%d",
				len(log.KPIs), len(log.Signals), len(back.KPIs), len(back.Signals))
		}
	})
}

func FuzzParseAppLog(f *testing.F) {
	f.Add("2022-08-10T17:30:15.500Z,42500000\n", true)
	f.Add("08/10/2022 13:30:15.500,81.5\n", false)
	f.Add(",", true)
	f.Add("no-comma-here", false)
	f.Fuzz(func(t *testing.T, content string, utcFormat bool) {
		format := AppLocalNoZone
		if utcFormat {
			format = AppUTC
		}
		entries, err := ParseAppLog(strings.NewReader(content), format, -6)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.TimeUTC.IsZero() && e.Value == 0 {
				continue // zero entries are representable
			}
		}
	})
}

func FuzzParseFilename(f *testing.F) {
	f.Add("XCAL_V_bulk-dl_20220810_113015.drm")
	f.Add("XCAL_T_rtt-9_20220815_235959.drm")
	f.Add("XCAL_Q_x_2022.drm")
	f.Add("")
	f.Add("XCAL_V_.drm")
	f.Fuzz(func(t *testing.T, name string) {
		op, test, wall, err := ParseFilename(name)
		if err != nil {
			return
		}
		// Accepted names must rebuild to an equivalent name for some
		// offset (the filename is zone-less; offset 0 reproduces the wall
		// clock exactly).
		rebuilt := Filename(op, test, wall, 0)
		op2, test2, wall2, err := ParseFilename(rebuilt)
		if err != nil {
			t.Fatalf("rebuilt name %q failed to parse: %v", rebuilt, err)
		}
		if op2 != op || test2 != test || !wall2.Equal(wall) {
			t.Fatalf("round trip changed identity: %v/%q/%v -> %v/%q/%v",
				op, test, wall, op2, test2, wall2)
		}
	})
}

func FuzzParseContentTime(f *testing.F) {
	f.Add("08-10 13:30:15.500")
	f.Add("13-45 99:99:99.999")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		ts, err := ParseContentTime(s)
		if err != nil {
			return
		}
		if got := FormatContentTime(ts); got != s {
			// time.Parse normalizes some inputs (e.g. leading spaces); the
			// formatted form must at least re-parse to the same instant.
			back, err := ParseContentTime(got)
			if err != nil || !back.Equal(ts) {
				t.Fatalf("content time %q -> %v -> %q not stable", s, ts, got)
			}
		}
	})
}
