package xcal

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// AppTimeFormat is a timestamp convention used by one of the applications
// in the testbed. Some apps logged UTC, others local wall time with no zone
// indicator (§B) — the latter cannot be interpreted without knowing where
// the phone was.
type AppTimeFormat int

const (
	// AppUTC logs RFC3339-style UTC timestamps.
	AppUTC AppTimeFormat = iota
	// AppLocalNoZone logs "MM/DD/YYYY HH:MM:SS.mmm" in the phone's current
	// local time with no zone indicator.
	AppLocalNoZone
)

const localNoZoneLayout = "01/02/2006 15:04:05.000"

// AppEntry is one application-level measurement: a 500 ms throughput sample
// (bps) or a ping RTT (ms), depending on the test.
type AppEntry struct {
	TimeUTC time.Time
	Value   float64
}

// WriteAppLog serializes entries in the given timestamp convention.
// offsetHours is the UTC offset of the phone's local clock at logging time
// (used only by AppLocalNoZone).
func WriteAppLog(w io.Writer, entries []AppEntry, format AppTimeFormat, offsetHours int) error {
	bw := bufio.NewWriter(w)
	zone := time.FixedZone("local", offsetHours*3600)
	for _, e := range entries {
		var stamp string
		switch format {
		case AppUTC:
			stamp = e.TimeUTC.UTC().Format("2006-01-02T15:04:05.000Z")
		case AppLocalNoZone:
			stamp = e.TimeUTC.In(zone).Format(localNoZoneLayout)
		default:
			return fmt.Errorf("xcal: unknown app log format %d", format)
		}
		if _, err := fmt.Fprintf(bw, "%s,%s\n", stamp, strconv.FormatFloat(e.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseAppLog parses an app log. For AppLocalNoZone the caller must supply
// the UTC offset the phone's clock had while logging — exactly the context
// the paper's post-processing had to reconstruct from the route.
func ParseAppLog(r io.Reader, format AppTimeFormat, offsetHours int) ([]AppEntry, error) {
	var out []AppEntry
	zone := time.FixedZone("local", offsetHours*3600)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		idx := strings.LastIndexByte(text, ',')
		if idx < 0 {
			return nil, fmt.Errorf("xcal: app log line %d: no separator", line)
		}
		var ts time.Time
		var err error
		switch format {
		case AppUTC:
			ts, err = time.Parse("2006-01-02T15:04:05.000Z", text[:idx])
		case AppLocalNoZone:
			ts, err = time.ParseInLocation(localNoZoneLayout, text[:idx], zone)
		default:
			return nil, fmt.Errorf("xcal: unknown app log format %d", format)
		}
		if err != nil {
			return nil, fmt.Errorf("xcal: app log line %d: %v", line, err)
		}
		v, err := strconv.ParseFloat(text[idx+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("xcal: app log line %d: value: %v", line, err)
		}
		out = append(out, AppEntry{TimeUTC: ts.UTC(), Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
