// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (Table 1 – Table 5, Fig. 1 – Fig. 16, and the appendix
// Figs. 18–22), plus ablation benches for the design choices called out in
// DESIGN.md §4. Each figure benchmark reduces a shared campaign dataset
// (built once per benchmark run) and reports the figure's headline numbers
// as custom metrics, so `go test -bench .` both times the reductions and
// prints the reproduced values next to the paper's.
package wheels_test

import (
	"sync"
	"testing"
	"time"

	"wheels/internal/analysis"
	"wheels/internal/apps"
	"wheels/internal/apps/offload"
	"wheels/internal/campaign"
	"wheels/internal/dataset"
	"wheels/internal/deploy"
	"wheels/internal/geo"
	"wheels/internal/multipath"
	"wheels/internal/pathtest"
	"wheels/internal/radio"
	"wheels/internal/ran"
	"wheels/internal/replay"
	"wheels/internal/sim"
	"wheels/internal/transport"
)

// benchDS builds the shared campaign dataset once: the first 1200 km with
// every test type enabled and app sessions shortened to keep the one-time
// setup around ten seconds.
var (
	benchOnce sync.Once
	benchData *dataset.Dataset
	benchRt   *geo.Route
)

func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		cfg := campaign.DefaultConfig(23)
		cfg.KmLimit = 1200
		cfg.VideoSec = 60
		cfg.GamingSec = 30
		c := campaign.New(cfg)
		benchRt = c.Route
		benchData = c.Run()
	})
	return benchData
}

func BenchmarkTable1_DatasetStats(b *testing.B) {
	ds := benchDataset(b)
	var t1 analysis.Table1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 = analysis.ComputeTable1(ds, benchRt.LengthKm(), benchRt.States(), len(benchRt.Cities))
	}
	b.ReportMetric(float64(t1.Handovers[radio.Verizon]), "handovers-V")
	b.ReportMetric(float64(t1.UniqueCells[radio.TMobile]), "cells-T")
	b.ReportMetric(t1.RxGB, "rxGB")
}

func BenchmarkFig1_PassiveVsActiveCoverage(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig1(ds, 600)
	}
	// Paper: passive logging badly under-reports 5G (AT&T passive = 0%).
	b.ReportMetric(100*f.Passive[radio.TMobile].FiveG(), "passive5G-T-%")
	b.ReportMetric(100*f.Active[radio.TMobile].FiveG(), "active5G-T-%")
	b.ReportMetric(100*f.Passive[radio.ATT].FiveG(), "passive5G-A-%")
}

func BenchmarkFig2a_TechCoverage(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig2a
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig2a(ds)
	}
	// Paper: 68% (T), ~22% (V), ~18% (A); high-speed 38% / ~14% / 3%.
	b.ReportMetric(100*f.Share[radio.TMobile].FiveG(), "5G-T-%")
	b.ReportMetric(100*f.Share[radio.Verizon].FiveG(), "5G-V-%")
	b.ReportMetric(100*f.Share[radio.ATT].FiveG(), "5G-A-%")
	b.ReportMetric(100*f.Share[radio.TMobile].HighSpeed(), "hs5G-T-%")
}

func BenchmarkFig2b_CoverageByDirection(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig2b
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig2b(ds)
	}
	b.ReportMetric(100*f.Share[radio.Verizon][radio.Downlink].HighSpeed(), "hsDL-V-%")
	b.ReportMetric(100*f.Share[radio.Verizon][radio.Uplink].HighSpeed(), "hsUL-V-%")
}

func BenchmarkFig2c_CoverageByTimezone(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig2c
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig2c(ds)
	}
	b.ReportMetric(100*f.Share[radio.TMobile][geo.Pacific].HighSpeed(), "hsPac-T-%")
	b.ReportMetric(100*f.Share[radio.TMobile][geo.Mountain].HighSpeed(), "hsMtn-T-%")
}

func BenchmarkFig2d_CoverageBySpeed(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig2d
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig2d(ds)
	}
	// Paper: high-speed 5G coverage falls from the low-speed (city) bin to
	// the 60+ mph (interstate) bin for every carrier.
	b.ReportMetric(100*f.Share[radio.Verizon][geo.SpeedLow].HighSpeed(), "hsLow-V-%")
	b.ReportMetric(100*f.Share[radio.Verizon][geo.SpeedHigh].HighSpeed(), "hsHigh-V-%")
}

func BenchmarkFig3_StaticVsDriving(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig3(ds)
	}
	// Paper: static medians 1511/311/710 Mbps DL; driving medians 6-34;
	// ~35% of driving samples below 5 Mbps.
	b.ReportMetric(f.StaticThr[radio.Verizon][radio.Downlink].Median(), "staticDL-V-Mbps")
	b.ReportMetric(f.DrivingThr[radio.Verizon][radio.Downlink].Median(), "driveDL-V-Mbps")
	b.ReportMetric(100*f.FracBelow5Mbps(radio.TMobile, radio.Downlink), "below5-T-%")
	b.ReportMetric(f.DrivingRTT[radio.Verizon].Median(), "driveRTT-V-ms")
}

func BenchmarkFig4_PerTechnology(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig4(ds)
	}
	b.ReportMetric(f.Thr[radio.TMobile][radio.Downlink][radio.NRMid].Max(), "midDLmax-T-Mbps")
	if c, ok := f.VerizonRTTEdge[radio.LTEA]; ok && c.N() > 0 {
		b.ReportMetric(c.Median(), "edgeRTT-LTEA-ms")
	}
	if c, ok := f.VerizonRTTCloud[radio.LTEA]; ok && c.N() > 0 {
		b.ReportMetric(c.Median(), "cloudRTT-LTEA-ms")
	}
}

func BenchmarkFig5_ThroughputByTimezone(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig5(ds)
	}
	if c, ok := f.Thr[radio.TMobile][radio.Downlink][geo.Pacific]; ok {
		b.ReportMetric(c.Median(), "dlPac-T-Mbps")
	}
	if c, ok := f.Thr[radio.TMobile][radio.Downlink][geo.Mountain]; ok {
		b.ReportMetric(c.Median(), "dlMtn-T-Mbps")
	}
}

func BenchmarkFig6_OperatorDiversity(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig6(ds)
	}
	vt := analysis.Pair{A: radio.Verizon, B: radio.TMobile}
	if c, ok := f.Diff[vt][radio.Downlink]; ok {
		b.ReportMetric(c.Median(), "diffVT-DL-Mbps")
		b.ReportMetric(float64(c.N()), "pairs")
	}
	b.ReportMetric(100*f.BinFrac[vt][radio.Uplink][analysis.LTLT], "LTLT-UL-%")
}

func BenchmarkFig7_ThroughputVsSpeed(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig7(ds)
	}
	cells := f.Cells[radio.TMobile][radio.Downlink]
	if c, ok := cells[geo.SpeedHigh][radio.NRMid]; ok {
		b.ReportMetric(c.Median, "midHighSpd-T-Mbps")
	}
	if c, ok := cells[geo.SpeedLow][radio.NRmmW]; ok {
		b.ReportMetric(float64(c.N), "mmWLowSpd-T-n")
	}
}

func BenchmarkFig8_RTTVsSpeed(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig8(ds)
	}
	b.ReportMetric(f.MedianRTTForBin(ds, radio.Verizon, geo.SpeedLow), "rttLow-V-ms")
	b.ReportMetric(f.MedianRTTForBin(ds, radio.Verizon, geo.SpeedHigh), "rttHigh-V-ms")
}

func BenchmarkTable2_KPICorrelations(b *testing.B) {
	ds := benchDataset(b)
	var t2 analysis.Table2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 = analysis.ComputeTable2(ds)
	}
	// Paper: no strong correlations; HO ~ -0.02..-0.05.
	b.ReportMetric(t2.MaxAbs(), "max|r|")
	b.ReportMetric(t2.R[radio.Verizon][radio.Downlink]["HO"], "r-HO-V-DL")
	b.ReportMetric(t2.R[radio.TMobile][radio.Uplink]["MCS"], "r-MCS-T-UL")
}

func BenchmarkFig9_TestLevelStats(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig9(ds)
	}
	// Paper: per-test DL medians 30/37/48 Mbps, RTT 64/82/81 ms.
	b.ReportMetric(f.MeanThr[radio.Verizon][radio.Downlink].Median(), "testDL-V-Mbps")
	b.ReportMetric(f.MeanRTT[radio.Verizon].Median(), "testRTT-V-ms")
	b.ReportMetric(100*f.StdThr[radio.Verizon][radio.Downlink].Median(), "stdfracDL-V-%")
}

func BenchmarkFig10_PerfVs5GTime(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig10(ds)
	}
	buckets := f.Thr[radio.Verizon][radio.Downlink]
	b.ReportMetric(buckets[0].MedianThr, "dl-0-25pc5G-Mbps")
	b.ReportMetric(buckets[3].MedianThr, "dl-75-100pc5G-Mbps")
}

func BenchmarkTable3_OoklaComparison(b *testing.B) {
	ds := benchDataset(b)
	var t3 analysis.Table3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t3 = analysis.ComputeTable3(ds)
	}
	b.ReportMetric(t3.OurDL[radio.Verizon], "ourDL-V-Mbps")
	b.ReportMetric(analysis.OoklaQ3_2022[radio.Verizon].DLMbps, "ooklaDL-V-Mbps")
}

func BenchmarkFig11_HandoverStats(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig11
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig11(ds)
	}
	// Paper: 2-3 HOs/mile median, 53-76 ms durations.
	b.ReportMetric(f.PerMile[radio.Verizon][radio.Downlink].Median(), "HOsPerMile-V")
	b.ReportMetric(f.DurationMs[radio.Verizon][radio.Downlink].Median(), "HOdur-V-ms")
	b.ReportMetric(f.DurationMs[radio.TMobile][radio.Downlink].Median(), "HOdur-T-ms")
}

func BenchmarkFig12_HandoverImpact(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.Fig12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFig12(ds)
	}
	d1 := f.DeltaT1[radio.Verizon][radio.Downlink]
	d2 := f.DeltaT2[radio.Verizon][radio.Downlink]
	// Paper: dT1 < 0 about 80% of the time; post-HO > pre-HO 55-60%.
	b.ReportMetric(100*d1.FracBelow(0), "dT1neg-V-%")
	b.ReportMetric(100*(1-d2.FracBelow(0)), "dT2pos-V-%")
}

func BenchmarkTable4_AppConfigs(b *testing.B) {
	var ar, cav offload.Config
	for i := 0; i < b.N; i++ {
		ar, cav = offload.ARConfig(), offload.CAVConfig()
	}
	b.ReportMetric(ar.RawKB, "arRawKB")
	b.ReportMetric(cav.InferMs, "cavInferMs")
}

func BenchmarkFig13_ARApp(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.OffloadFig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeOffloadFig(ds, dataset.TestAR)
	}
	// Paper: driving median E2E 214 ms (compressed), 4.35 FPS, mAP 30.1.
	b.ReportMetric(f.E2E[radio.Verizon][true].Median(), "e2e-V-ms")
	b.ReportMetric(f.FPS[radio.Verizon][true].Median(), "fps-V")
	b.ReportMetric(f.MAP[radio.Verizon][true].Median(), "mAP-V")
	b.ReportMetric(f.HOCorrelation[radio.Verizon], "rHO-V")
}

func BenchmarkFig14_CAVApp(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.OffloadFig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeOffloadFig(ds, dataset.TestCAV)
	}
	// Paper: driving median E2E 269 ms compressed; minimum observed 148 ms.
	b.ReportMetric(f.E2E[radio.Verizon][true].Median(), "e2e-V-ms")
	b.ReportMetric(f.E2E[radio.Verizon][true].Min(), "e2eMin-V-ms")
	b.ReportMetric(f.E2E[radio.Verizon][false].Median(), "e2eRaw-V-ms")
}

func BenchmarkTable5_LatencyToMAP(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for ft := 0.0; ft < 35; ft += 0.5 {
			sink += offload.MAPForLatency(ft, i%2 == 0)
		}
	}
	b.ReportMetric(offload.MAPForLatency(0, false), "mAP-bin0")
	b.ReportMetric(offload.MAPForLatency(29, true), "mAP-bin29-comp")
	_ = sink
}

func BenchmarkFig15_VideoStreaming(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.VideoFig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeVideoFig(ds)
	}
	// Paper: driving median QoE -53.75 (best static 96.29); 40% negative.
	b.ReportMetric(f.QoE[radio.Verizon].Median(), "qoe-V")
	b.ReportMetric(100*f.NegQoEFrac[radio.Verizon], "negQoE-V-%")
	b.ReportMetric(100*f.Rebuf[radio.Verizon].Max(), "rebufMax-V-%")
}

func BenchmarkFig16_CloudGaming(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.GamingFig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeGamingFig(ds)
	}
	// Paper: median bitrate 17.5 Mbps (Verizon), drops median 1.6%.
	b.ReportMetric(f.Bitrate[radio.Verizon].Median(), "bitrate-V-Mbps")
	b.ReportMetric(f.Latency[radio.Verizon].Median(), "latency-V-ms")
	b.ReportMetric(100*f.Drops[radio.Verizon].Median(), "drops-V-%")
}

func BenchmarkFig18to20_AppsAllOperators(b *testing.B) {
	ds := benchDataset(b)
	var ar, cav analysis.OffloadFig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar = analysis.ComputeOffloadFig(ds, dataset.TestAR)
		cav = analysis.ComputeOffloadFig(ds, dataset.TestCAV)
	}
	// Paper §C.3: Verizon leads AR (lowest RTT); cross-operator CAV gaps
	// shrink under compression.
	for _, op := range radio.Operators() {
		b.ReportMetric(ar.E2E[op][true].Median(), "arE2E-"+op.Short()+"-ms")
	}
	b.ReportMetric(cav.E2E[radio.TMobile][false].Median(), "cavE2Eraw-T-ms")
}

func BenchmarkFig21_VideoAllOperators(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.VideoFig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeVideoFig(ds)
	}
	for _, op := range radio.Operators() {
		b.ReportMetric(f.QoE[op].Median(), "qoe-"+op.Short())
	}
}

func BenchmarkFig22_GamingAllOperators(b *testing.B) {
	ds := benchDataset(b)
	var f analysis.GamingFig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeGamingFig(ds)
	}
	for _, op := range radio.Operators() {
		b.ReportMetric(f.Bitrate[op].Median(), "bitrate-"+op.Short()+"-Mbps")
	}
}

// --- Campaign engine benches ---

// campaignBenchConfig is the full LA→Boston methodology with app sessions
// shortened (as in benchDataset) so one serial iteration stays in the tens
// of seconds rather than minutes.
func campaignBenchConfig() campaign.Config {
	cfg := campaign.DefaultConfig(23)
	cfg.VideoSec = 60
	cfg.GamingSec = 30
	return cfg
}

// campaignSerialNs caches the serial engine's wall-clock so the sharded
// bench can report its speedup even when run in isolation. Benchmarks run
// sequentially, so a plain package var is safe.
var campaignSerialNs float64

func BenchmarkCampaign_Serial(b *testing.B) {
	cfg := campaignBenchConfig()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		campaign.New(cfg).Run()
		campaignSerialNs = float64(time.Since(start))
	}
}

// BenchmarkCampaign_Sharded runs the same full campaign split into 4 route
// shards and reports the wall-clock speedup over the serial engine
// (expected ≥2x at 4 shards on a multi-core machine; ~1x or slightly below
// on a single core, where the shards only add warm-up overhead).
func BenchmarkCampaign_Sharded(b *testing.B) {
	cfg := campaignBenchConfig()
	const shards = 4
	if campaignSerialNs == 0 {
		start := time.Now()
		campaign.New(cfg).Run()
		campaignSerialNs = float64(time.Since(start))
	}
	b.ResetTimer()
	var elapsed float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		campaign.RunSharded(cfg, shards, 0)
		elapsed = float64(time.Since(start))
	}
	b.ReportMetric(shards, "shards")
	b.ReportMetric(campaignSerialNs/elapsed, "speedup-x")
}

// --- Ablation benches (DESIGN.md §4) ---

// BenchmarkAblation_ElevationPolicy removes the traffic-aware elevation
// policy's dependence on traffic (idle vs backlogged) and measures the 5G
// coverage share each view produces — the mechanism behind Fig. 1.
func BenchmarkAblation_ElevationPolicy(b *testing.B) {
	route := geo.NewRoute()
	dep := deploy.New(route, radio.TMobile, sim.NewRNG(23).Stream("deploy"))
	fiveG := func(tr ran.Traffic) float64 {
		ue := ran.NewUE(sim.NewRNG(23).Stream("ablate"), dep)
		hits, total := 0, 0
		tm := 0.0
		for km := 0.0; km < 800; km += 0.05 {
			snap := ue.Step(tm, 0.5, km, 60, route.RoadClassAt(km), route.TimezoneAt(km), tr)
			tm += 0.5
			if !snap.Outage {
				total++
				if snap.Tech.Is5G() {
					hits++
				}
			}
		}
		return float64(hits) / float64(total)
	}
	var idle, active float64
	for i := 0; i < b.N; i++ {
		idle = fiveG(ran.Idle)
		active = fiveG(ran.BacklogDL)
	}
	b.ReportMetric(100*idle, "idle5G-%")
	b.ReportMetric(100*active, "backlog5G-%")
}

// BenchmarkAblation_TransportModel compares CUBIC against the idealized
// fluid transport over the same driving link: the gap is the throughput
// cost of congestion-control dynamics.
func BenchmarkAblation_TransportModel(b *testing.B) {
	var cubic, fluid float64
	for i := 0; i < b.N; i++ {
		lc := radio.NewLink(sim.NewRNG(23).Stream("tm", "cubic"), radio.TMobile, radio.NRMid)
		lf := radio.NewLink(sim.NewRNG(23).Stream("tm", "cubic"), radio.TMobile, radio.NRMid)
		cubic = transport.RunBulk(&pathtest.DriveLink{Link: lc}, 30).MeanBps()
		fluid = transport.RunFluid(&pathtest.DriveLink{Link: lf}, 30).MeanBps()
	}
	b.ReportMetric(cubic/1e6, "cubic-Mbps")
	b.ReportMetric(fluid/1e6, "fluid-Mbps")
	b.ReportMetric(cubic/fluid, "utilization")
}

// constNet is a fixed path for the app-level ablations.
type constNet struct{ dl, ul, rtt float64 }

func (n constNet) Step(float64) apps.NetState {
	return apps.NetState{CapDLbps: n.dl, CapULbps: n.ul, RTTms: n.rtt}
}

// BenchmarkAblation_LocalTracking measures how much the AR app's on-device
// tracker protects accuracy at driving-grade latency.
func BenchmarkAblation_LocalTracking(b *testing.B) {
	net := constNet{dl: 30e6, ul: 10e6, rtt: 70}
	var with, without offload.Result
	for i := 0; i < b.N; i++ {
		with = offload.Run(net, offload.ARConfig(), true, true)
		without = offload.Run(net, offload.ARConfig(), true, false)
	}
	b.ReportMetric(with.MAP, "mAP-tracking")
	b.ReportMetric(without.MAP, "mAP-noTracking")
}

// BenchmarkAblation_EdgeServers measures the AR app against an in-network
// edge server versus a remote cloud at equal radio conditions.
func BenchmarkAblation_EdgeServers(b *testing.B) {
	var edge, cloud offload.Result
	for i := 0; i < b.N; i++ {
		edge = offload.Run(constNet{dl: 80e6, ul: 20e6, rtt: 18}, offload.ARConfig(), true, true)
		cloud = offload.Run(constNet{dl: 80e6, ul: 20e6, rtt: 75}, offload.ARConfig(), true, true)
	}
	b.ReportMetric(edge.MedianE2EMs, "edgeE2E-ms")
	b.ReportMetric(cloud.MedianE2EMs, "cloudE2E-ms")
	b.ReportMetric(edge.MAP-cloud.MAP, "mAPgain")
}

// --- Extension benches (beyond the paper) ---

// BenchmarkExtension_MultivariateKPI runs the paper's stated future work:
// a joint OLS model of throughput over all six KPIs.
func BenchmarkExtension_MultivariateKPI(b *testing.B) {
	ds := benchDataset(b)
	var m analysis.MultivariateKPI
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = analysis.ComputeMultivariateKPI(ds)
	}
	if res, ok := m.Joint[radio.Verizon][radio.Downlink]; ok {
		b.ReportMetric(res.R2, "jointR2-V-DL")
		b.ReportMetric(m.BestSingle[radio.Verizon][radio.Downlink], "bestSingleR2-V-DL")
	}
}

// BenchmarkExtension_MultipathGain estimates the paper's multi-connectivity
// recommendation from concurrent 3-carrier samples.
func BenchmarkExtension_MultipathGain(b *testing.B) {
	ds := benchDataset(b)
	var g analysis.MultipathGain
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = analysis.ComputeMultipathGain(ds, radio.Downlink)
	}
	b.ReportMetric(g.MedianGain(), "medianGain-x")
	b.ReportMetric(g.BestSingle.Median(), "bestSingle-Mbps")
	b.ReportMetric(g.Bonded.Median(), "bonded-Mbps")
}

// BenchmarkExtension_BondedTransport bonds three CUBIC subflows over
// independently varying per-carrier links (the multipath package) and
// compares against the best single subflow.
func BenchmarkExtension_BondedTransport(b *testing.B) {
	mkPaths := func() []transport.Path {
		var out []transport.Path
		for _, op := range radio.Operators() {
			out = append(out, &pathtest.DriveLink{
				Link: radio.NewLink(sim.NewRNG(23).Stream("bond", op.String()), op, radio.NRMid),
			})
		}
		return out
	}
	var bonded, best float64
	for i := 0; i < b.N; i++ {
		agg, err := multipath.NewAggregator(mkPaths()...)
		if err != nil {
			b.Fatal(err)
		}
		res := agg.RunBulk(30)
		bonded = res.Aggregate.MeanBps()
		best = 0
		for _, pp := range res.PerPath {
			if m := pp.MeanBps(); m > best {
				best = m
			}
		}
	}
	b.ReportMetric(bonded/1e6, "bonded-Mbps")
	b.ReportMetric(best/1e6, "bestSubflow-Mbps")
}

// BenchmarkExtension_SpeedTestGap measures Table 3's methodology gap: the
// same drive measured with 1-connection nuttcp vs an 8-connection
// peak-seeking speed test.
func BenchmarkExtension_SpeedTestGap(b *testing.B) {
	ds := benchDataset(b)
	var t3x analysis.Table3X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t3x = analysis.ComputeTable3X(ds)
	}
	b.ReportMetric(t3x.NuttcpDL[radio.Verizon], "nuttcp-V-Mbps")
	b.ReportMetric(t3x.SpeedDL[radio.Verizon], "speedtest-V-Mbps")
}

// BenchmarkExtension_WhatIfReplay replays the recorded traces through the
// app models under the "edge everywhere" counterfactual (§8).
func BenchmarkExtension_WhatIfReplay(b *testing.B) {
	ds := benchDataset(b)
	ul := replay.Extract(ds, radio.Uplink)
	var base, edge replay.Outcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base = replay.ReplayAR(ul)
		edge = replay.ReplayAR(ul, replay.CapRTT(25))
	}
	b.ReportMetric(base.Median, "arE2E-baseline-ms")
	b.ReportMetric(edge.Median, "arE2E-edge-ms")
}

// BenchmarkExtension_CubicVsBBR compares nuttcp's CUBIC against BBR over
// the same driving radio link — how much of the driving throughput
// collapse a modern congestion controller would recover.
func BenchmarkExtension_CubicVsBBR(b *testing.B) {
	var cubic, bbr float64
	for i := 0; i < b.N; i++ {
		lc := radio.NewLink(sim.NewRNG(23).Stream("cc", "x"), radio.Verizon, radio.LTEA)
		lb := radio.NewLink(sim.NewRNG(23).Stream("cc", "x"), radio.Verizon, radio.LTEA)
		cubic = transport.RunBulk(&pathtest.DriveLink{Link: lc}, 30).MeanBps()
		bbr = transport.RunBulkBBR(&pathtest.DriveLink{Link: lb}, 30).MeanBps()
	}
	b.ReportMetric(cubic/1e6, "cubic-Mbps")
	b.ReportMetric(bbr/1e6, "bbr-Mbps")
	b.ReportMetric(bbr/cubic, "bbr-gain")
}

// BenchmarkAblation_RRCKeepalive quantifies why the paper's handover-logger
// pings every 200 ms (§3): sparse probing pays an RRC promotion delay on
// nearly every probe.
func BenchmarkAblation_RRCKeepalive(b *testing.B) {
	run := func(intervalSec float64) (promotions int, delayMs float64) {
		m := ran.NewRRCMachine(sim.NewRNG(23))
		for tt := 0.0; tt < 600; tt += intervalSec {
			delayMs += m.OnTraffic(tt)
		}
		return m.Promotions, delayMs
	}
	var kaProm, spProm int
	var kaDelay, spDelay float64
	for i := 0; i < b.N; i++ {
		kaProm, kaDelay = run(0.2)
		spProm, spDelay = run(15)
	}
	b.ReportMetric(float64(kaProm), "promotions-200ms")
	b.ReportMetric(kaDelay, "delay-200ms-ms")
	b.ReportMetric(float64(spProm), "promotions-15s")
	b.ReportMetric(spDelay, "delay-15s-ms")
}

// BenchmarkAblation_OffloadPipelining measures the extension app-level
// optimization: overlapping frame compression with the previous upload
// (§8 recommendation 1 territory).
func BenchmarkAblation_OffloadPipelining(b *testing.B) {
	net := constNet{dl: 30e6, ul: 9e6, rtt: 70}
	var serial, pipe offload.Result
	for i := 0; i < b.N; i++ {
		serial = offload.Run(net, offload.CAVConfig(), true, true)
		pipe = offload.RunPipelined(net, offload.CAVConfig(), true, true)
	}
	b.ReportMetric(serial.MedianE2EMs, "serialE2E-ms")
	b.ReportMetric(pipe.MedianE2EMs, "pipelinedE2E-ms")
	b.ReportMetric(pipe.OffloadFPS-serial.OffloadFPS, "fpsGain")
}
