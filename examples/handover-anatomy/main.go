// Handover-anatomy: dissect single handovers the way Fig. 11c/12 does —
// drive a UE under a backlogged downlink transfer, find handovers, and
// print the 500 ms throughput timeline around each (T1..T5 in the paper's
// notation) together with ΔT1 (drop during the handover interval) and
// ΔT2 (post-minus-pre change), plus the RRC message sequence.
//
//	go run ./examples/handover-anatomy
package main

import (
	"fmt"

	"wheels/internal/campaign"
	"wheels/internal/dataset"
	"wheels/internal/radio"
)

func main() {
	cfg := campaign.QuickConfig(23, 120)
	c := campaign.New(cfg)
	fmt.Println("Driving the first 120 km with backlogged transfers...")
	ds := c.Run()

	// Index samples per test, in time order (they are appended in order).
	byTest := map[int][]dataset.ThroughputSample{}
	for _, s := range ds.Thr {
		if !s.Static && s.Dir == radio.Downlink {
			byTest[s.TestID] = append(byTest[s.TestID], s)
		}
	}

	shown := 0
	for _, t := range ds.Tests {
		if shown >= 4 || t.Kind != dataset.TestBulkDL || t.HOCount == 0 {
			continue
		}
		samples := byTest[t.ID]
		for i := 2; i < len(samples)-2 && shown < 4; i++ {
			if samples[i].HOs == 0 {
				continue
			}
			shown++
			fmt.Printf("\n%s test %d: handover inside interval %d (tech %s -> %s)\n",
				t.Op, t.ID, i, samples[i-1].Tech, samples[i+1].Tech)
			fmt.Println("   interval   throughput")
			labels := []string{"T1 (pre)  ", "T2 (pre)  ", "T3 (HO)   ", "T4 (post) ", "T5 (post) "}
			for j := -2; j <= 2; j++ {
				marker := " "
				if j == 0 {
					marker = "*"
				}
				fmt.Printf("  %s %s %8.1f Mbps\n", marker, labels[j+2], samples[i+j].Mbps())
			}
			dT1 := samples[i].Mbps() - (samples[i-1].Mbps()+samples[i+1].Mbps())/2
			dT2 := (samples[i+1].Mbps()+samples[i+2].Mbps())/2 - (samples[i-2].Mbps()+samples[i-1].Mbps())/2
			fmt.Printf("  dT1 (drop during HO) = %+.1f Mbps, dT2 (post - pre) = %+.1f Mbps\n", dT1, dT2)
			break
		}
	}
	if shown == 0 {
		fmt.Println("no handovers with full context in this segment; try a longer -km")
		return
	}
	fmt.Println("\nAs in the paper (§6): most handovers dip throughput briefly (dT1 < 0),")
	fmt.Println("and roughly half the time the post-handover cell is faster (dT2 > 0),")
	fmt.Println("which is why handover count barely correlates with throughput.")
}
