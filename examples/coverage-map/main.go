// Coverage-map: render the Fig. 1 comparison as ASCII strips — for each
// carrier, the technology the UE connects to along the LA → Boston route,
// as seen by (a) the passive handover-logger (idle traffic) and (b) the
// active view during backlogged downlink tests. One character per ~25 km:
//
//	.  LTE      -  LTE-A      l  5G-low      m  5G-mid      W  5G-mmWave
//	   (space: no service)
//
//	go run ./examples/coverage-map
package main

import (
	"fmt"

	"wheels/internal/deploy"
	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/ran"
	"wheels/internal/sim"
)

const binKm = 25.0

func symbol(t radio.Tech) byte {
	switch t {
	case radio.LTE:
		return '.'
	case radio.LTEA:
		return '-'
	case radio.NRLow:
		return 'l'
	case radio.NRMid:
		return 'm'
	case radio.NRmmW:
		return 'W'
	default:
		return '?'
	}
}

// strip drives a UE along the whole route with the given traffic profile
// and returns one symbol per bin (the technology served most of the bin).
func strip(route *geo.Route, dep *deploy.Deployment, tr ran.Traffic) []byte {
	ue := ran.NewUE(sim.NewRNG(23).Stream("map", tr.String()), dep)
	nbins := int(route.LengthKm()/binKm) + 1
	counts := make([]map[radio.Tech]int, nbins)
	svc := make([]int, nbins)
	tm := 0.0
	for km := 0.0; km < route.LengthKm(); km += 0.25 {
		snap := ue.Step(tm, 0.5, km, 60, route.RoadClassAt(km), route.TimezoneAt(km), tr)
		tm += 0.5
		b := int(km / binKm)
		if snap.Outage {
			continue
		}
		if counts[b] == nil {
			counts[b] = map[radio.Tech]int{}
		}
		counts[b][snap.Tech]++
		svc[b]++
	}
	out := make([]byte, nbins)
	for b := range out {
		if svc[b] == 0 {
			out[b] = ' '
			continue
		}
		best, bestN := radio.LTE, -1
		for tech, n := range counts[b] {
			if n > bestN {
				best, bestN = tech, n
			}
		}
		out[b] = symbol(best)
	}
	return out
}

func main() {
	route := geo.NewRoute()
	fmt.Println("Technology along LA -> Boston ( . LTE  - LTE-A  l 5G-low  m 5G-mid  W mmWave )")
	fmt.Println()

	// City mile-markers for orientation.
	marks := make([]byte, int(route.LengthKm()/binKm)+1)
	for i := range marks {
		marks[i] = ' '
	}
	for _, c := range route.Cities {
		for km := 0.0; km < route.LengthKm(); km += binKm / 2 {
			if cc, ok := route.CityAt(km); ok && cc.Name == c.Name {
				marks[int(km/binKm)] = '^'
				break
			}
		}
	}
	fmt.Printf("cities:            %s\n", marks)
	fmt.Println("                   (LA, Las Vegas, SLC, Denver, Omaha, Chicago, Indy, Cleveland, Rochester, Boston)")
	fmt.Println()

	rng := sim.NewRNG(23)
	for _, op := range radio.Operators() {
		dep := deploy.New(route, op, rng.Stream("deploy"))
		fmt.Printf("%-9s passive: %s\n", op, strip(route, dep, ran.Idle))
		fmt.Printf("%-9s active:  %s\n\n", "", strip(route, dep, ran.BacklogDL))
	}
	fmt.Println("The passive rows under-report 5G badly (AT&T: none at all) — the")
	fmt.Println("operators only elevate a UE to 5G under real traffic (§4.1).")
}
