// Multi-operator: reproduce the Fig. 6 operator-diversity analysis on a
// fresh simulated segment and estimate what the paper's multi-connectivity
// recommendation (aggregate links from multiple operators, e.g. over
// Multipath TCP) would gain.
//
//	go run ./examples/multi-operator
package main

import (
	"fmt"

	"wheels/internal/analysis"
	"wheels/internal/campaign"
	"wheels/internal/radio"
)

func main() {
	cfg := campaign.QuickConfig(23, 500)
	c := campaign.New(cfg)
	fmt.Printf("Simulating concurrent 3-carrier tests over the first %.0f km...\n\n", cfg.KmLimit)
	ds := c.Run()

	fmt.Println(analysis.ComputeFig6(ds).Render())

	// The multi-connectivity estimate: bond concurrent samples across all
	// three carriers (the paper's §8 recommendation 2).
	fmt.Println(analysis.ComputeMultipathGain(ds, radio.Downlink).Render())
	fmt.Println("Per-carrier driving medians for reference:")
	f3 := analysis.ComputeFig3(ds)
	for _, op := range radio.Operators() {
		fmt.Printf("  %-9s %6.1f Mbps\n", op, f3.DrivingThr[op][radio.Downlink].Median())
	}
}
