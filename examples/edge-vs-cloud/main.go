// Edge-vs-cloud: quantify what Wavelength-style edge servers buy the two
// uplink-centric killer apps (AR and CAV offloading), reproducing the §7.1
// conclusion that edge computing improves performance regardless of radio
// technology while the 100 ms CAV budget stays out of reach.
//
// The example drives a Verizon UE over a city street served by each radio
// technology in turn and runs the offloading benchmark against an in-city
// edge server (wire RTT ~2 ms) and a remote cloud (wire RTT ~45 ms).
//
//	go run ./examples/edge-vs-cloud
package main

import (
	"fmt"

	"wheels/internal/apps"
	"wheels/internal/apps/offload"
	"wheels/internal/geo"
	"wheels/internal/radio"
	"wheels/internal/sim"
	"wheels/internal/transport"
)

// drivePath simulates one radio link while driving at city speed and
// composes it with a server's wire latency.
type drivePath struct {
	link   *radio.Link
	lat    *transport.LatencyModel
	wireMs float64
	distKm float64
}

func (p *drivePath) Step(dt float64) apps.NetState {
	st := p.link.Step(dt, p.distKm, 25, geo.RoadCity)
	return apps.NetState{
		CapDLbps: st.CapDL,
		CapULbps: st.CapUL,
		RTTms:    p.lat.RTTms(dt, p.link.Tech, p.wireMs, 25),
	}
}

func main() {
	rng := sim.NewRNG(23)
	fmt.Println("Verizon AR/CAV offloading while driving in a city: edge vs cloud")
	fmt.Println("(median E2E ms / offloaded FPS / mAP for AR; E2E for CAV)")
	for _, tech := range []radio.Tech{radio.LTEA, radio.NRMid, radio.NRmmW} {
		fmt.Printf("\n%s:\n", tech)
		for _, srv := range []struct {
			name   string
			wireMs float64
		}{{"edge ", 2}, {"cloud", 45}} {
			arPath := &drivePath{
				link:   radio.NewLink(rng.Stream("ar", tech.String(), srv.name), radio.Verizon, tech),
				lat:    transport.NewLatencyModel(rng.Stream("lat", tech.String(), srv.name), radio.Verizon),
				wireMs: srv.wireMs,
				distKm: 0.4 * radio.Bands(radio.Verizon, tech).RangeKm,
			}
			ar := offload.Run(arPath, offload.ARConfig(), true, true)
			cavPath := &drivePath{
				link:   radio.NewLink(rng.Stream("cav", tech.String(), srv.name), radio.Verizon, tech),
				lat:    transport.NewLatencyModel(rng.Stream("clat", tech.String(), srv.name), radio.Verizon),
				wireMs: srv.wireMs,
				distKm: 0.4 * radio.Bands(radio.Verizon, tech).RangeKm,
			}
			cav := offload.Run(cavPath, offload.CAVConfig(), true, true)
			fmt.Printf("  %s  AR: %5.0f ms  %4.1f FPS  mAP %4.1f   |  CAV: %5.0f ms",
				srv.name, ar.MedianE2EMs, ar.OffloadFPS, ar.MAP, cav.MedianE2EMs)
			if cav.MedianE2EMs > 100 {
				fmt.Printf("  (misses the 100 ms budget)")
			}
			fmt.Println()
		}
	}
	fmt.Println("\nEdge servers cut E2E latency on every technology, but the CAV")
	fmt.Println("pipeline still cannot reach 100 ms — the paper's §7.1.2 finding.")
}
