// Quickstart: simulate the first stretch of the LA → Boston measurement
// campaign and print the headline results — technology coverage and the
// static-vs-driving performance gap.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"wheels/internal/analysis"
	"wheels/internal/campaign"
	"wheels/internal/radio"
)

func main() {
	// A reduced campaign: first 300 km out of Los Angeles, network tests
	// plus static baselines, seeded for reproducibility.
	cfg := campaign.DefaultConfig(23)
	cfg.KmLimit = 300
	cfg.EnableApps = false
	cfg.EnablePassive = false

	c := campaign.New(cfg)
	fmt.Printf("Driving the first %.0f km of the %.0f km route...\n\n",
		cfg.KmLimit, c.Route.LengthKm())
	ds := c.Run()

	fmt.Println(analysis.ComputeFig2a(ds).Render())

	f3 := analysis.ComputeFig3(ds)
	fmt.Println("Static vs driving (downlink medians):")
	for _, op := range radio.Operators() {
		st := f3.StaticThr[op][radio.Downlink]
		dr := f3.DrivingThr[op][radio.Downlink]
		fmt.Printf("  %-9s static %7.0f Mbps -> driving %6.1f Mbps (%.0f%% of samples below 5 Mbps)\n",
			op, st.Median(), dr.Median(), 100*f3.FracBelow5Mbps(op, radio.Downlink))
	}
	fmt.Println("\nDriving RTT medians:")
	for _, op := range radio.Operators() {
		fmt.Printf("  %-9s %5.0f ms (static: %4.0f ms)\n",
			op, f3.DrivingRTT[op].Median(), f3.StaticRTT[op].Median())
	}
}
