module wheels

go 1.22
